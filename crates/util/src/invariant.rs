//! Runtime invariant checkers for the workspace's core data structures.
//!
//! The static side of the determinism contract is enforced by
//! `cargo xtask lint`; this module is the *runtime* counterpart: cheap,
//! `debug_assertions`-gated structural checks wired into the hot
//! constructors (`soi-graph` CSR builders, `soi-sampling` world
//! generation). Release builds compile the `debug_*` wrappers to no-ops,
//! so production throughput is unaffected, while every debug/test run
//! revalidates the invariants end-to-end.
//!
//! Each checker also exists as a pure `check_*` function returning
//! `Result<(), InvariantViolation>` so tests (and tools) can assert both
//! acceptance and rejection in any build profile.

/// A structural invariant violation, with enough context to locate it.
#[derive(Clone, Debug, PartialEq)]
pub enum InvariantViolation {
    /// CSR `offsets` is empty, does not start at 0, does not end at
    /// `targets.len()`, or decreases somewhere.
    BadOffsets {
        /// Explanation of the specific offset defect.
        detail: String,
    },
    /// A per-node adjacency slice is not sorted ascending.
    UnsortedAdjacency {
        /// The node whose out-list is unsorted.
        node: usize,
    },
    /// An adjacency target is `>= num_nodes`.
    TargetOutOfBounds {
        /// The node whose out-list holds the bad target.
        node: usize,
        /// The out-of-bounds target id.
        target: u32,
        /// Number of nodes in the graph.
        num_nodes: usize,
    },
    /// An edge probability lies outside `[0, 1]` (or is NaN).
    ProbabilityOutOfRange {
        /// Index into the probability array.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// A supposed DAG (e.g. a condensation) contains a cycle.
    CycleDetected {
        /// A node on the detected cycle.
        node: usize,
    },
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvariantViolation::BadOffsets { detail } => write!(f, "bad CSR offsets: {detail}"),
            InvariantViolation::UnsortedAdjacency { node } => {
                write!(f, "adjacency of node {node} is not sorted")
            }
            InvariantViolation::TargetOutOfBounds {
                node,
                target,
                num_nodes,
            } => write!(
                f,
                "node {node} has target {target} out of bounds (num_nodes = {num_nodes})"
            ),
            InvariantViolation::ProbabilityOutOfRange { index, value } => {
                write!(f, "edge probability [{index}] = {value} outside [0, 1]")
            }
            InvariantViolation::CycleDetected { node } => {
                write!(f, "graph is not a DAG: node {node} lies on a cycle")
            }
        }
    }
}

impl std::error::Error for InvariantViolation {}

/// Checks CSR well-formedness: `offsets` non-empty, starting at 0,
/// ending at `targets.len()`, monotone non-decreasing; every per-node
/// target slice sorted ascending with ids `< offsets.len() - 1`.
pub fn check_csr(offsets: &[usize], targets: &[u32]) -> Result<(), InvariantViolation> {
    if offsets.is_empty() {
        return Err(InvariantViolation::BadOffsets {
            detail: "offsets array is empty".into(),
        });
    }
    if offsets[0] != 0 {
        return Err(InvariantViolation::BadOffsets {
            detail: format!("offsets[0] = {}, expected 0", offsets[0]),
        });
    }
    let last = offsets[offsets.len() - 1];
    if last != targets.len() {
        return Err(InvariantViolation::BadOffsets {
            detail: format!(
                "offsets ends at {last}, expected targets.len() = {}",
                targets.len()
            ),
        });
    }
    if let Some(pos) = offsets.windows(2).position(|w| w[0] > w[1]) {
        return Err(InvariantViolation::BadOffsets {
            detail: format!(
                "offsets decreases at {pos}: {} > {}",
                offsets[pos],
                offsets[pos + 1]
            ),
        });
    }
    let n = offsets.len() - 1;
    for v in 0..n {
        let slice = &targets[offsets[v]..offsets[v + 1]];
        if slice.windows(2).any(|w| w[0] > w[1]) {
            return Err(InvariantViolation::UnsortedAdjacency { node: v });
        }
        if let Some(&bad) = slice.iter().find(|&&t| t as usize >= n) {
            return Err(InvariantViolation::TargetOutOfBounds {
                node: v,
                target: bad,
                num_nodes: n,
            });
        }
    }
    Ok(())
}

/// Checks that every probability is finite and within `[0, 1]`.
pub fn check_probabilities(probs: &[f64]) -> Result<(), InvariantViolation> {
    for (index, &value) in probs.iter().enumerate() {
        if !(0.0..=1.0).contains(&value) {
            return Err(InvariantViolation::ProbabilityOutOfRange { index, value });
        }
    }
    Ok(())
}

/// Checks that a CSR graph is acyclic (Kahn's algorithm). Used on
/// condensation DAGs, where a cycle means SCC contraction went wrong.
pub fn check_acyclic(offsets: &[usize], targets: &[u32]) -> Result<(), InvariantViolation> {
    check_csr(offsets, targets)?;
    let n = offsets.len() - 1;
    let mut in_deg = vec![0usize; n];
    for &t in targets {
        in_deg[t as usize] += 1;
    }
    let mut queue: Vec<usize> = (0..n).filter(|&v| in_deg[v] == 0).collect();
    let mut seen = 0usize;
    while let Some(v) = queue.pop() {
        seen += 1;
        for &t in &targets[offsets[v]..offsets[v + 1]] {
            in_deg[t as usize] -= 1;
            if in_deg[t as usize] == 0 {
                queue.push(t as usize);
            }
        }
    }
    if seen != n {
        // Any node with residual in-degree lies on (or downstream of) a
        // cycle; report the smallest for determinism.
        let node = (0..n).find(|&v| in_deg[v] > 0).unwrap_or(0);
        return Err(InvariantViolation::CycleDetected { node });
    }
    Ok(())
}

/// Debug-build CSR validation; compiles to nothing in release builds.
#[inline]
pub fn debug_check_csr(offsets: &[usize], targets: &[u32]) {
    #[cfg(debug_assertions)]
    {
        if let Err(e) = check_csr(offsets, targets) {
            unreachable_violation(&e);
        }
    }
    #[cfg(not(debug_assertions))]
    {
        let _ = (offsets, targets);
    }
}

/// Debug-build probability validation; no-op in release builds.
#[inline]
pub fn debug_check_probabilities(probs: &[f64]) {
    #[cfg(debug_assertions)]
    {
        if let Err(e) = check_probabilities(probs) {
            unreachable_violation(&e);
        }
    }
    #[cfg(not(debug_assertions))]
    {
        let _ = probs;
    }
}

/// Debug-build acyclicity validation; no-op in release builds.
#[inline]
pub fn debug_check_acyclic(offsets: &[usize], targets: &[u32]) {
    #[cfg(debug_assertions)]
    {
        if let Err(e) = check_acyclic(offsets, targets) {
            unreachable_violation(&e);
        }
    }
    #[cfg(not(debug_assertions))]
    {
        let _ = (offsets, targets);
    }
}

/// Aborts on a violated internal invariant (debug builds only). A
/// violation here is always a bug in the constructor that called the
/// checker, never a data error, so failing loudly is correct.
#[cfg(debug_assertions)]
#[cold]
fn unreachable_violation(e: &InvariantViolation) -> ! {
    // xtask-allow: panic_policy — debug-only guard; a structural
    // invariant violation is an internal bug, not a recoverable error.
    panic!("internal invariant violated: {e}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_csr_accepted() {
        // Diamond: 0 -> {1, 2}, 1 -> {3}, 2 -> {3}.
        let offsets = [0usize, 2, 3, 4, 4];
        let targets = [1u32, 2, 3, 3];
        assert_eq!(check_csr(&offsets, &targets), Ok(()));
        debug_check_csr(&offsets, &targets);
        // Empty graph.
        assert_eq!(check_csr(&[0], &[]), Ok(()));
    }

    #[test]
    fn unsorted_adjacency_rejected() {
        let offsets = [0usize, 2, 2];
        let targets = [1u32, 0]; // node 0's list [1, 0] not sorted
        assert_eq!(
            check_csr(&offsets, &targets),
            Err(InvariantViolation::UnsortedAdjacency { node: 0 })
        );
    }

    #[test]
    fn out_of_bounds_target_rejected() {
        let offsets = [0usize, 1, 1];
        let targets = [7u32];
        assert_eq!(
            check_csr(&offsets, &targets),
            Err(InvariantViolation::TargetOutOfBounds {
                node: 0,
                target: 7,
                num_nodes: 2
            })
        );
    }

    #[test]
    fn malformed_offsets_rejected() {
        assert!(matches!(
            check_csr(&[], &[]),
            Err(InvariantViolation::BadOffsets { .. })
        ));
        assert!(matches!(
            check_csr(&[1, 1], &[]),
            Err(InvariantViolation::BadOffsets { .. })
        ));
        assert!(matches!(
            check_csr(&[0, 2], &[0u32]),
            Err(InvariantViolation::BadOffsets { .. })
        ));
        assert!(matches!(
            check_csr(&[0, 1, 0, 2], &[0u32, 0]),
            Err(InvariantViolation::BadOffsets { .. })
        ));
    }

    #[test]
    fn probabilities_checked() {
        assert_eq!(check_probabilities(&[0.0, 0.5, 1.0]), Ok(()));
        assert_eq!(
            check_probabilities(&[0.3, 1.5]),
            Err(InvariantViolation::ProbabilityOutOfRange {
                index: 1,
                value: 1.5
            })
        );
        assert_eq!(
            check_probabilities(&[-0.1]),
            Err(InvariantViolation::ProbabilityOutOfRange {
                index: 0,
                value: -0.1
            })
        );
        assert!(matches!(
            check_probabilities(&[f64::NAN]),
            Err(InvariantViolation::ProbabilityOutOfRange { index: 0, .. })
        ));
    }

    #[test]
    fn dag_accepted_cycle_rejected() {
        // Chain 2 -> 1 -> 0 (a condensation in Tarjan id order).
        let offsets = [0usize, 0, 1, 2];
        let targets = [0u32, 1];
        assert_eq!(check_acyclic(&offsets, &targets), Ok(()));
        // 2-cycle: 0 -> 1 -> 0.
        let offsets = [0usize, 1, 2];
        let targets = [1u32, 0];
        assert_eq!(
            check_acyclic(&offsets, &targets),
            Err(InvariantViolation::CycleDetected { node: 0 })
        );
        // Self-loop is a cycle.
        let offsets = [0usize, 1];
        let targets = [0u32];
        assert!(matches!(
            check_acyclic(&offsets, &targets),
            Err(InvariantViolation::CycleDetected { .. })
        ));
    }

    #[test]
    fn violations_render_usefully() {
        let msg = InvariantViolation::TargetOutOfBounds {
            node: 3,
            target: 9,
            num_nodes: 5,
        }
        .to_string();
        assert!(msg.contains("node 3") && msg.contains('9') && msg.contains('5'));
        let msg = InvariantViolation::CycleDetected { node: 2 }.to_string();
        assert!(msg.contains("node 2"));
    }
}
