//! Tab-separated-value emission for experiment outputs.
//!
//! Every experiment binary prints a TSV table to stdout (easy to pipe into
//! plotting tools) and a human summary to stderr. Values containing tabs or
//! newlines are rejected at write time rather than silently corrupting the
//! table.

use std::fmt::Display;
use std::io::{self, Write};

/// Writes a TSV table with a fixed column schema.
pub struct TsvWriter<W: Write> {
    out: W,
    columns: usize,
}

impl<W: Write> TsvWriter<W> {
    /// Creates a writer and emits the header row.
    pub fn new(mut out: W, header: &[&str]) -> io::Result<Self> {
        assert!(!header.is_empty(), "TSV needs at least one column");
        write_row_raw(&mut out, header.iter().map(|s| s.to_string()))?;
        Ok(TsvWriter {
            out,
            columns: header.len(),
        })
    }

    /// Writes one data row; panics if the arity differs from the header.
    pub fn row<D: Display>(&mut self, cells: &[D]) -> io::Result<()> {
        assert_eq!(
            cells.len(),
            self.columns,
            "row arity {} != header arity {}",
            cells.len(),
            self.columns
        );
        write_row_raw(&mut self.out, cells.iter().map(|c| c.to_string()))
    }

    /// Flushes the underlying writer.
    pub fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }

    /// Consumes the writer, returning the underlying sink.
    pub fn into_inner(self) -> W {
        self.out
    }
}

fn write_row_raw<W: Write>(out: &mut W, cells: impl Iterator<Item = String>) -> io::Result<()> {
    let mut first = true;
    for cell in cells {
        assert!(
            !cell.contains('\t') && !cell.contains('\n'),
            "TSV cell contains separator: {cell:?}"
        );
        if !first {
            out.write_all(b"\t")?;
        }
        out.write_all(cell.as_bytes())?;
        first = false;
    }
    out.write_all(b"\n")
}

/// Formats an `f64` with enough digits for plotting without noise
/// (6 significant decimals, trailing zeros trimmed).
pub fn fmt_f64(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        return format!("{}", x as i64);
    }
    let s = format!("{x:.6}");
    let s = s.trim_end_matches('0');
    s.trim_end_matches('.').to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_header_and_rows() {
        let mut buf = Vec::new();
        {
            let mut w = TsvWriter::new(&mut buf, &["k", "spread"]).unwrap();
            w.row(&["1", "10.5"]).unwrap();
            w.row(&["2", "17.25"]).unwrap();
        }
        assert_eq!(
            String::from_utf8(buf).unwrap(),
            "k\tspread\n1\t10.5\n2\t17.25\n"
        );
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut buf = Vec::new();
        let mut w = TsvWriter::new(&mut buf, &["a", "b"]).unwrap();
        let _ = w.row(&["only-one"]);
    }

    #[test]
    #[should_panic(expected = "separator")]
    fn embedded_tab_panics() {
        let mut buf = Vec::new();
        let mut w = TsvWriter::new(&mut buf, &["a"]).unwrap();
        let _ = w.row(&["bad\tcell"]);
    }

    #[test]
    fn f64_formatting() {
        assert_eq!(fmt_f64(3.0), "3");
        assert_eq!(fmt_f64(0.25), "0.25");
        assert_eq!(fmt_f64(1.0 / 3.0), "0.333333");
        assert_eq!(fmt_f64(-2.0), "-2");
    }
}
