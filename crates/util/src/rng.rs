//! Deterministic seed derivation and the workspace's only random
//! number generator.
//!
//! Every public entry point in the workspace takes a single `u64` seed.
//! Internally, components that need independent randomness (one RNG per
//! sampled world, per thread, per experiment arm) derive sub-seeds with
//! [`derive_seed`] so that runs are reproducible regardless of thread
//! scheduling, and so that no two components accidentally share a stream.
//!
//! [`Xoshiro256pp`] (xoshiro256++, seeded through a SplitMix64 expansion)
//! is the sole generator; there is no ambient/thread-local entropy source
//! anywhere in the workspace, so a run is a pure function of its seed.
//! The `xtask` determinism lint enforces this by rejecting any use of the
//! external `rand` crate or unseeded RNG construction.

/// SplitMix64 finalizer: a high-quality 64-bit mixing function.
///
/// Used to turn `(seed, stream-id)` pairs into statistically independent
/// sub-seeds.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the `stream`-th sub-seed of `seed`.
///
/// Distinct `(seed, stream)` pairs map to distinct outputs with
/// overwhelming probability; the mapping is stable across runs and
/// platforms.
#[inline]
pub fn derive_seed(seed: u64, stream: u64) -> u64 {
    mix64(seed ^ mix64(stream.wrapping_mul(0xA24B_AED4_963E_E407)))
}

/// Draws one SplitMix64 output and advances the stream.
///
/// `mix64(state)` is the SplitMix64 finalizer applied to the
/// pre-incremented state, so emitting first and advancing after yields
/// the reference output sequence.
#[inline]
fn splitmix64_next(state: &mut u64) -> u64 {
    let out = mix64(*state);
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    out
}

/// xoshiro256++ — the workspace's pseudo-random generator.
///
/// 256 bits of state, period `2^256 − 1`, seeded by expanding a `u64`
/// through SplitMix64 (the seeding procedure recommended by the xoshiro
/// authors). Construction *requires* an explicit seed; there is no
/// `from_entropy`-style constructor on purpose — every random stream in
/// the workspace must be derivable from the run seed via [`derive_seed`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Creates a generator whose state is the SplitMix64 expansion of
    /// `seed`. Distinct seeds give statistically independent streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut st = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64_next(&mut st);
        }
        // xoshiro's one forbidden state; unreachable in practice from the
        // SplitMix64 expansion, but cheap to rule out entirely.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Xoshiro256pp { s }
    }

    /// Convenience: the generator for the `stream`-th sub-stream of
    /// `seed`, i.e. `seed_from_u64(derive_seed(seed, stream))`.
    pub fn from_stream(seed: u64, stream: u64) -> Self {
        Xoshiro256pp::seed_from_u64(derive_seed(seed, stream))
    }
}

impl Rng for Xoshiro256pp {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// The random-source trait every sampler in the workspace is generic
/// over. One required method ([`Rng::next_u64`]); everything else is
/// derived, so alternative generators (e.g. counter-based ones for
/// per-edge hashing) only implement the core step.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A sample from `T`'s standard distribution: `f64` uniform in
    /// `[0, 1)` with 53-bit precision, integers uniform over their full
    /// range, `bool` a fair coin.
    #[inline]
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample from a half-open integer range.
    ///
    /// Uses Lemire's widening-multiply rejection method: unbiased, and
    /// one multiply in the common (non-rejecting) case. The range must
    /// be non-empty.
    #[inline]
    fn random_range<T: UniformInt>(&mut self, range: core::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// `true` with probability `p` (`p` is clamped to `[0, 1]`).
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types with a canonical "standard" distribution for [`Rng::random`].
pub trait StandardSample: Sized {
    /// Draws one standard-distributed value.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> f64 {
        // 53 high bits → uniform multiples of 2^-53 in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

/// Unbiased uniform range sampling for [`Rng::random_range`].
///
/// The sample is drawn from `u64` bits via Lemire's method, so for a
/// given generator state the value drawn for `0..n` is identical across
/// all implementing integer types — streams do not shift when a call
/// site changes `NodeId` width.
pub trait UniformInt: Copy {
    /// Draws uniformly from `range`; the range must be non-empty.
    fn sample_range<R: Rng>(rng: &mut R, range: core::ops::Range<Self>) -> Self;
}

/// Uniform `u64` in `[0, n)` by widening multiply with rejection.
#[inline]
fn uniform_u64_below<R: Rng>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    let mut m = (rng.next_u64() as u128) * (n as u128);
    let mut lo = m as u64;
    if lo < n {
        // Threshold = 2^64 mod n; rejecting lo below it de-biases.
        let t = n.wrapping_neg() % n;
        while lo < t {
            m = (rng.next_u64() as u128) * (n as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_uniform_int {
    ($($ty:ty),*) => {$(
        impl UniformInt for $ty {
            #[inline]
            fn sample_range<R: Rng>(rng: &mut R, range: core::ops::Range<$ty>) -> $ty {
                assert!(
                    range.start < range.end,
                    "random_range on empty range {}..{}",
                    range.start,
                    range.end
                );
                let span = (range.end as u64).wrapping_sub(range.start as u64);
                range.start + uniform_u64_below(rng, span) as $ty
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn mix64_is_not_identity_and_spreads() {
        assert_ne!(mix64(0), 0);
        assert_ne!(mix64(1), mix64(2));
        // Single-bit input changes flip roughly half the output bits.
        let a = mix64(0x1234);
        let b = mix64(0x1235);
        let flipped = (a ^ b).count_ones();
        assert!(
            (20..=44).contains(&flipped),
            "avalanche too weak: {flipped}"
        );
    }

    #[test]
    fn derived_seeds_are_distinct() {
        let mut seen = HashSet::new();
        for seed in 0..16u64 {
            for stream in 0..256u64 {
                assert!(seen.insert(derive_seed(seed, stream)), "collision");
            }
        }
    }

    #[test]
    fn derivation_is_deterministic() {
        assert_eq!(derive_seed(42, 7), derive_seed(42, 7));
        assert_ne!(derive_seed(42, 7), derive_seed(42, 8));
        assert_ne!(derive_seed(42, 7), derive_seed(43, 7));
    }

    #[test]
    fn generator_is_deterministic_and_seed_sensitive() {
        let mut a = Xoshiro256pp::seed_from_u64(12345);
        let mut b = Xoshiro256pp::seed_from_u64(12345);
        let mut c = Xoshiro256pp::seed_from_u64(12346);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys, "same seed, same stream");
        assert_ne!(xs, zs, "adjacent seeds diverge");
    }

    #[test]
    fn f64_samples_lie_in_unit_interval_with_sane_mean() {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x), "{x} outside [0, 1)");
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn range_samples_stay_in_bounds_and_cover() {
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.random_range(3u32..13);
            assert!((3..13).contains(&v));
            seen[(v - 3) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "1000 draws cover all 10 values");
        // usize and u64 draws agree with u32 for the same state (the
        // sample is taken in u64 space, so type width is irrelevant).
        let mut r1 = Xoshiro256pp::seed_from_u64(5);
        let mut r2 = Xoshiro256pp::seed_from_u64(5);
        for _ in 0..100 {
            assert_eq!(r1.random_range(0u32..97) as u64, r2.random_range(0u64..97));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let _ = rng.random_range(5u32..5);
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = Xoshiro256pp::seed_from_u64(21);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
        let mut rng = Xoshiro256pp::seed_from_u64(22);
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn derived_streams_are_pairwise_independent_looking() {
        // Cross-stream independence: streams derived from the same base
        // seed share no prefix and are uncorrelated at lag 0.
        let base = 99;
        let streams: Vec<Vec<u64>> = (0..8)
            .map(|i| {
                let mut rng = Xoshiro256pp::from_stream(base, i);
                (0..256).map(|_| rng.next_u64()).collect()
            })
            .collect();
        for i in 0..streams.len() {
            for j in i + 1..streams.len() {
                assert_ne!(streams[i][0], streams[j][0], "streams {i},{j} collide");
                // Bitwise correlation of the XOR of paired outputs should
                // hover around half the bits.
                let mismatched: u32 = streams[i]
                    .iter()
                    .zip(&streams[j])
                    .map(|(a, b)| (a ^ b).count_ones())
                    .sum();
                let total = 256 * 64;
                let frac = f64::from(mismatched) / f64::from(total);
                assert!(
                    (0.47..0.53).contains(&frac),
                    "streams {i},{j}: xor density {frac}"
                );
            }
        }
    }

    #[test]
    fn mut_ref_forwarding_matches_direct_use() {
        let mut a = Xoshiro256pp::seed_from_u64(3);
        let mut b = Xoshiro256pp::seed_from_u64(3);
        fn draw<R: Rng>(mut rng: R) -> u64 {
            rng.next_u64()
        }
        assert_eq!(draw(&mut a), b.next_u64());
    }
}
