//! Deterministic seed derivation.
//!
//! Every public entry point in the workspace takes a single `u64` seed.
//! Internally, components that need independent randomness (one RNG per
//! sampled world, per thread, per experiment arm) derive sub-seeds with
//! [`derive_seed`] so that runs are reproducible regardless of thread
//! scheduling, and so that no two components accidentally share a stream.

/// SplitMix64 finalizer: a high-quality 64-bit mixing function.
///
/// Used to turn `(seed, stream-id)` pairs into statistically independent
/// sub-seeds.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the `stream`-th sub-seed of `seed`.
///
/// Distinct `(seed, stream)` pairs map to distinct outputs with
/// overwhelming probability; the mapping is stable across runs and
/// platforms.
#[inline]
pub fn derive_seed(seed: u64, stream: u64) -> u64 {
    mix64(seed ^ mix64(stream.wrapping_mul(0xA24B_AED4_963E_E407)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn mix64_is_not_identity_and_spreads() {
        assert_ne!(mix64(0), 0);
        assert_ne!(mix64(1), mix64(2));
        // Single-bit input changes flip roughly half the output bits.
        let a = mix64(0x1234);
        let b = mix64(0x1235);
        let flipped = (a ^ b).count_ones();
        assert!((20..=44).contains(&flipped), "avalanche too weak: {flipped}");
    }

    #[test]
    fn derived_seeds_are_distinct() {
        let mut seen = HashSet::new();
        for seed in 0..16u64 {
            for stream in 0..256u64 {
                assert!(seen.insert(derive_seed(seed, stream)), "collision");
            }
        }
    }

    #[test]
    fn derivation_is_deterministic() {
        assert_eq!(derive_seed(42, 7), derive_seed(42, 7));
        assert_ne!(derive_seed(42, 7), derive_seed(42, 8));
        assert_ne!(derive_seed(42, 7), derive_seed(43, 7));
    }
}
