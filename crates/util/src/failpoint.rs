//! Deterministic fault injection.
//!
//! A *failpoint* is a named site planted in I/O, checkpoint, and sampling
//! paths with the [`failpoint!`](crate::failpoint!) /
//! [`failpoint_crash!`](crate::failpoint_crash!) macros. Sites compile to
//! nothing in release builds (`cfg(debug_assertions)`), so production hot
//! loops carry no branch; in debug builds every site consults a registry
//! seeded from the `SOI_FAILPOINTS` environment variable, letting tests
//! prove crash-then-resume behavior by running the real binary with a
//! fault armed and comparing the resumed output byte-for-byte against an
//! uninterrupted run.
//!
//! Spec syntax (comma-separated):
//!
//! ```text
//! SOI_FAILPOINTS="ckpt.write.tmp=exit(41)@2,graph.io.read=error"
//! ```
//!
//! * `site=error`     — the site returns a typed [`Fault`] (converted into
//!   the enclosing function's error type) on **every** hit;
//! * `site=panic`     — the site panics;
//! * `site=exit(N)`   — the process exits with status `N` (a simulated
//!   crash; no destructors, no flushing);
//! * `…@K`            — the action fires only on the `K`-th hit of the
//!   site (1-based), making multi-pass pipelines addressable
//!   deterministically.
//!
//! The registry is process-global. Tests running in-process use
//! [`install`]/[`clear`]; subprocess tests set the environment variable.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Environment variable holding the failpoint spec.
pub const ENV_VAR: &str = "SOI_FAILPOINTS";

/// The canonical list of failpoint sites planted in the workspace, for
/// the fault-injection test matrix (each site is fired once by CI).
/// Keep in sync with the `failpoint!` call sites; the crash-resume
/// integration tests iterate this list.
pub const SITES: &[&str] = &[
    "graph.io.read",
    "ckpt.write.tmp",
    "ckpt.write.rename",
    "engine.block",
    "greedy.round",
    "cli.spheres.write",
    // Server-side sites: exercised by the serve-chaos subprocess matrix
    // (crates/cli/tests/serve_chaos.rs), not by the crash-resume matrix
    // (those sites crash mid-pipeline and resume from a checkpoint;
    // these crash mid-request and the daemon must keep serving).
    "server.worker.dispatch",
    "server.index.build",
    "server.cache.insert",
    "server.response.write",
    // Forced-slow marker: makes the slow-query log record the next
    // request regardless of its tick cost (checked by SlowLog, never
    // crashes), so tests can pin the log format on a fast request.
    "server.request.slow",
    // Sketch-backend sites: `sketch.build.block` fires between world
    // blocks in the resumable sketch build (crash-resume style);
    // `server.sketch.build` fires on the engine's sketch-build path and
    // is exercised by the serve-chaos matrix.
    "sketch.build.block",
    "server.sketch.build",
    // Router-side sites: exercised by the route-chaos fabric matrix
    // (crates/cli/tests/route_chaos.rs). `forward.write` fires on the
    // router→shard hop (failover path), `response.write` on the
    // router→client hop (client retry path).
    "router.forward.write",
    "router.response.write",
    // Fires before the override table is persisted after a rebalance;
    // the rebalance itself must still succeed (persistence is
    // best-effort, surfaced via `router.override_persist_errors`).
    "router.overrides.persist",
    // Fires before a fuzz replay file is parsed, so the differential
    // harness's own I/O error path stays typed and testable.
    "verify.replay.read",
];

/// What an armed failpoint does when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    /// Return a typed [`Fault`] from the enclosing function.
    Error,
    /// Panic with the site name.
    Panic,
    /// Exit the process with this status (simulated crash).
    Exit(i32),
}

/// A typed injected fault, convertible into the workspace error types.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fault {
    /// The site that fired.
    pub site: String,
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "injected fault at {}", self.site)
    }
}

impl std::error::Error for Fault {}

impl From<Fault> for std::io::Error {
    fn from(fault: Fault) -> Self {
        std::io::Error::other(fault.to_string())
    }
}

#[derive(Clone, Debug)]
struct Armed {
    action: Action,
    /// 1-based hit on which to fire; `None` fires on every hit.
    at_hit: Option<u64>,
    hits: u64,
}

/// `None` means "not yet initialized from the environment".
static REGISTRY: Mutex<Option<BTreeMap<String, Armed>>> = Mutex::new(None);

/// Parses a failpoint spec. Returns the armed map or a description of the
/// first malformed entry.
fn parse_spec(spec: &str) -> Result<BTreeMap<String, Armed>, String> {
    let mut map = BTreeMap::new();
    for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
        let (site, rhs) = entry
            .split_once('=')
            .ok_or_else(|| format!("failpoint entry {entry:?}: expected site=action"))?;
        let (action_str, at_hit) = match rhs.rsplit_once('@') {
            Some((a, k)) => {
                let k: u64 = k
                    .parse()
                    .map_err(|e| format!("failpoint entry {entry:?}: bad hit count: {e}"))?;
                if k == 0 {
                    return Err(format!("failpoint entry {entry:?}: hit count is 1-based"));
                }
                (a, Some(k))
            }
            None => (rhs, None),
        };
        let action = if action_str == "error" {
            Action::Error
        } else if action_str == "panic" {
            Action::Panic
        } else if let Some(code) = action_str
            .strip_prefix("exit(")
            .and_then(|s| s.strip_suffix(')'))
        {
            Action::Exit(
                code.parse()
                    .map_err(|e| format!("failpoint entry {entry:?}: bad exit code: {e}"))?,
            )
        } else {
            return Err(format!(
                "failpoint entry {entry:?}: unknown action {action_str:?} \
                 (error|panic|exit(N), optional @K)"
            ));
        };
        map.insert(
            site.trim().to_string(),
            Armed {
                action,
                at_hit,
                hits: 0,
            },
        );
    }
    Ok(map)
}

/// Installs a spec programmatically (replacing any previous state,
/// including environment-derived state). Intended for in-process tests.
pub fn install(spec: &str) -> Result<(), String> {
    let map = parse_spec(spec)?;
    // A poisoned registry only ever holds test state. xtask-allow: panic_policy
    *REGISTRY.lock().expect("failpoint registry poisoned") = Some(map);
    Ok(())
}

/// Disarms every failpoint (and suppresses environment re-initialization).
pub fn clear() {
    // A poisoned registry only ever holds test state. xtask-allow: panic_policy
    *REGISTRY.lock().expect("failpoint registry poisoned") = Some(BTreeMap::new());
}

/// Evaluates a site hit. Returns `Some(Fault)` when an `error` action
/// fires; `panic`/`exit` actions do not return. Disarmed sites and
/// release builds cost nothing (the macros compile the call out).
pub fn trigger(site: &str) -> Option<Fault> {
    // Every site hit is also a schedule-perturbation point (before the
    // registry lock, so an injected yield/sleep never holds it).
    crate::schedule::perturb(site);
    // A poisoned registry only ever holds test state. xtask-allow: panic_policy
    let mut guard = REGISTRY.lock().expect("failpoint registry poisoned");
    let map = guard.get_or_insert_with(|| {
        std::env::var(ENV_VAR)
            .ok()
            .and_then(|spec| match parse_spec(&spec) {
                Ok(map) => Some(map),
                Err(e) => {
                    // Arming mistakes must be loud: a silently ignored
                    // spec would "pass" every fault-injection test.
                    // soi-util sits below soi-obs, so stderr is the only
                    // channel available here. xtask-allow: observability
                    eprintln!("warning: ignoring {ENV_VAR}: {e}");
                    None
                }
            })
            .unwrap_or_default()
    });
    let armed = map.get_mut(site)?;
    armed.hits += 1;
    let fire = match armed.at_hit {
        Some(k) => armed.hits == k,
        None => true,
    };
    if !fire {
        return None;
    }
    let action = armed.action;
    drop(guard); // do not hold the lock while panicking/exiting
    match action {
        Action::Error => Some(Fault {
            site: site.to_string(),
        }),
        // Panicking is this action's contract: tests arm it on purpose
        // to prove unwind safety. xtask-allow: panic_policy
        Action::Panic => panic!("failpoint {site} fired (panic)"),
        Action::Exit(code) => std::process::exit(code),
    }
}

/// Plants a failpoint in a function returning `Result<_, E>` where
/// `E: From<soi_util::failpoint::Fault>`. Compiles to nothing in release
/// builds. An armed `error` action returns `Err` from the enclosing
/// function; `panic`/`exit` actions take effect at the site.
#[macro_export]
macro_rules! failpoint {
    ($site:expr) => {{
        #[cfg(debug_assertions)]
        {
            if let Some(fault) = $crate::failpoint::trigger($site) {
                return Err(fault.into());
            }
        }
    }};
}

/// Plants a crash-only failpoint (for sites without a `Result` return
/// path): `panic`/`exit` actions take effect, an `error` action is
/// ignored. Compiles to nothing in release builds.
#[macro_export]
macro_rules! failpoint_crash {
    ($site:expr) => {{
        #[cfg(debug_assertions)]
        {
            let _ = $crate::failpoint::trigger($site);
        }
    }};
}

/// Serializes tests that arm the process-global registry: every test that
/// calls [`install`]/[`clear`] (in this crate or a dependent one) must
/// hold this guard so concurrently running tests don't disarm each other.
/// Recovers from poisoning, since some failpoint actions panic on purpose.
#[doc(hidden)]
pub fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static TEST_LOCK: Mutex<()> = Mutex::new(());
    TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        test_guard()
    }

    #[test]
    fn disarmed_sites_do_nothing() {
        let _g = locked();
        clear();
        assert_eq!(trigger("nope"), None);
    }

    #[test]
    fn error_action_fires_every_hit() {
        let _g = locked();
        install("a.b=error").unwrap();
        assert!(trigger("a.b").is_some());
        assert!(trigger("a.b").is_some());
        assert_eq!(trigger("other"), None);
        clear();
    }

    #[test]
    fn at_hit_fires_exactly_once_on_the_kth_hit() {
        let _g = locked();
        install("s=error@3").unwrap();
        assert_eq!(trigger("s"), None);
        assert_eq!(trigger("s"), None);
        assert_eq!(
            trigger("s"),
            Some(Fault {
                site: "s".to_string()
            })
        );
        assert_eq!(trigger("s"), None, "fires only on hit 3");
        clear();
    }

    #[test]
    fn spec_parsing_accepts_the_documented_grammar() {
        let map = parse_spec("a=error, b=exit(41)@2 ,c=panic").unwrap();
        assert_eq!(map.len(), 3);
        assert_eq!(map["a"].action, Action::Error);
        assert_eq!(map["b"].action, Action::Exit(41));
        assert_eq!(map["b"].at_hit, Some(2));
        assert_eq!(map["c"].action, Action::Panic);
        assert!(parse_spec("").unwrap().is_empty());
    }

    #[test]
    fn spec_parsing_rejects_malformed_entries() {
        assert!(parse_spec("no-equals").is_err());
        assert!(parse_spec("a=frobnicate").is_err());
        assert!(parse_spec("a=exit(x)").is_err());
        assert!(parse_spec("a=error@0").is_err());
        assert!(parse_spec("a=error@x").is_err());
    }

    #[test]
    fn macro_returns_typed_error_through_io_result() {
        let _g = locked();
        install("io.site=error").unwrap();
        fn f() -> std::io::Result<u32> {
            crate::failpoint!("io.site");
            Ok(1)
        }
        let err = f().unwrap_err();
        assert!(err.to_string().contains("io.site"), "{err}");
        clear();
        assert_eq!(f().ok(), Some(1));
    }

    #[test]
    #[should_panic(expected = "failpoint boom fired")]
    fn panic_action_panics() {
        // Holds TEST_LOCK across the panic; `locked()` recovers from the
        // resulting poison for subsequent tests.
        let _g = locked();
        install("boom=panic").unwrap();
        let _ = trigger("boom");
    }

    #[test]
    fn crash_macro_swallows_error_action() {
        let _g = locked();
        install("soft=error").unwrap();
        fn f() -> u32 {
            crate::failpoint_crash!("soft");
            7
        }
        assert_eq!(f(), 7);
        clear();
    }
}
