//! # soi-util
//!
//! Shared, dependency-free utilities for the *Spheres of Influence*
//! workspace: a compact fixed-capacity bitset, streaming/summary statistics,
//! histogram and empirical-CDF helpers, wall-clock timers, a small TSV
//! emitter used by every experiment binary, deterministic seed derivation
//! and the workspace RNG ([`rng`]), plus `debug_assertions`-gated runtime
//! invariant checkers ([`invariant`]) for CSR graphs, edge probabilities,
//! and condensation DAGs.
//!
//! It also hosts the fault-tolerant execution substrate: cooperative
//! cancellation/deadline tokens and typed partial results ([`runtime`]),
//! versioned checksummed checkpoint files ([`ckpt`]), streaming Mix64
//! hashing for fingerprints and corruption detection ([`hash`]),
//! deterministic fault injection ([`failpoint`]), seeded schedule
//! perturbation at the same sites ([`schedule`]), and the workspace-wide
//! error type ([`error`]), plus worker-count resolution and chunked
//! scoped fan-out shared by every parallel pipeline ([`pool`]) and
//! deterministic capped-exponential retry schedules ([`backoff`]).
//!
//! Nothing in this crate knows about graphs or cascades; it exists so the
//! algorithmic crates stay focused and allocation-conscious.

pub mod backoff;
pub mod bitset;
pub mod ckpt;
pub mod cms;
pub mod error;
pub mod failpoint;
pub mod hash;
pub mod invariant;
pub mod pool;
pub mod rng;
pub mod runtime;
pub mod schedule;
pub mod stats;
pub mod timer;
pub mod tsv;

pub use bitset::BitSet;
pub use error::{ProtoErrorKind, SoiError};
pub use runtime::{Deadline, Outcome, Progress, StopReason};
pub use stats::{RunningStats, Summary};
pub use timer::Timer;
