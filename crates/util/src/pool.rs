//! Worker-count resolution and chunked scoped fan-out.
//!
//! Every parallel pipeline in the workspace used to hand-roll the same
//! snippet: read `std::thread::available_parallelism`, substitute a
//! requested override, clamp to the work size, then fan a mutable slice
//! out over contiguous chunks with `std::thread::scope`. This module is
//! that snippet, written once:
//!
//! * [`effective_threads`] resolves a worker count from (in priority
//!   order) the caller's explicit request, the process-global override
//!   set by the CLI's `--threads` flag ([`set_default_threads`]), the
//!   `SOI_THREADS` environment variable, and finally the hardware
//!   parallelism — always clamped to `[1, work_items]`.
//! * [`for_each_indexed`] / [`for_each_indexed_with`] fill a slice of
//!   slots in parallel, one contiguous chunk per worker. Slot `i` is
//!   computed by `f(i, &mut slots[i])` exactly once, and the scope joins
//!   before returning, so results are position-deterministic regardless
//!   of the worker count.
//!
//! Thread-count resolution never affects *what* is computed — workspace
//! pipelines derive per-unit seeds from `(seed, unit-id)` — only how the
//! units are distributed.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-global default worker count; 0 means "not set".
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-global default worker count used when a pipeline is
/// called with `requested == 0`. Pass 0 to clear the override. The CLI
/// maps its global `--threads N` flag here so one flag governs every
/// parallel phase of a command (index builds, batch typical cascades,
/// greedy evaluation, server worker pools).
pub fn set_default_threads(n: usize) {
    // ordering: a self-contained config cell — the count is the whole
    // payload, nothing else is published through it, and thread-count
    // resolution never affects what is computed (see module docs).
    DEFAULT_THREADS.store(n, Ordering::Relaxed);
}

/// The process-global default worker count (0 when unset).
pub fn default_threads() -> usize {
    // ordering: config read; see `set_default_threads`.
    DEFAULT_THREADS.load(Ordering::Relaxed)
}

/// Resolves the worker count for `work_items` independent units.
///
/// Priority: `requested` when non-zero, then [`set_default_threads`],
/// then the `SOI_THREADS` environment variable, then
/// `std::thread::available_parallelism`. The result is clamped to
/// `[1, max(work_items, 1)]` so callers can spawn exactly this many
/// workers without empty chunks.
pub fn effective_threads(requested: usize, work_items: usize) -> usize {
    let resolved = if requested != 0 {
        requested
    } else {
        let global = default_threads();
        if global != 0 {
            global
        } else if let Some(env) = env_threads() {
            env
        } else {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        }
    };
    resolved.clamp(1, work_items.max(1))
}

/// `SOI_THREADS` as a positive worker count, when set and parseable.
fn env_threads() -> Option<usize> {
    parse_threads(&std::env::var("SOI_THREADS").ok()?)
}

/// Parses a `SOI_THREADS`-style value: a positive integer, surrounding
/// whitespace tolerated. Zero, negatives, and garbage are rejected
/// (`None`), falling back to the next resolution tier rather than
/// crashing a pipeline over a typo'd environment.
fn parse_threads(raw: &str) -> Option<usize> {
    match raw.trim().parse::<usize>() {
        Ok(n) if n > 0 => Some(n),
        _ => None,
    }
}

/// Fills `slots` by calling `f(i, &mut slots[i])` for every index, fanned
/// out over [`effective_threads`]`(requested, slots.len())` scoped
/// workers in contiguous chunks. Runs inline when one worker suffices.
pub fn for_each_indexed<T, F>(slots: &mut [T], requested: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    for_each_indexed_with(slots, requested, || (), |(), i, slot| f(i, slot));
}

/// [`for_each_indexed`] with per-worker scratch state: each worker calls
/// `init()` once and threads the state through its chunk — the pattern
/// index builds use to reuse a sampler allocation across worlds.
pub fn for_each_indexed_with<T, S, I, F>(slots: &mut [T], requested: usize, init: I, f: F)
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &mut T) + Sync,
{
    use soi_obs::perthread;

    let n = slots.len();
    let threads = effective_threads(requested, n);
    // Timing is per-dispatch and per-chunk only — never per-item — so
    // the plane's cost stays bounded by the obs_overhead_* guard.
    let timed = perthread::enabled();
    if threads <= 1 || n <= 1 {
        let _reg = perthread::register(0);
        let start = timed.then(std::time::Instant::now);
        let mut state = init();
        for (i, slot) in slots.iter_mut().enumerate() {
            f(&mut state, i, slot);
        }
        if let Some(start) = start {
            let ns = perthread::clamp_ns(start.elapsed().as_nanos());
            perthread::record_busy(ns);
            perthread::record_lifetime(ns);
            perthread::record_items(n as u64);
            perthread::note_dispatch(1, n, ns);
        }
        return;
    }
    let chunk = n.div_ceil(threads);
    let f = &f;
    let init = &init;
    let start = timed.then(std::time::Instant::now);
    std::thread::scope(|scope| {
        for (t, chunk_slots) in slots.chunks_mut(chunk).enumerate() {
            scope.spawn(move || {
                let _reg = perthread::register(t);
                let worker_start = timed.then(std::time::Instant::now);
                let len = chunk_slots.len() as u64;
                let mut state = init();
                for (j, slot) in chunk_slots.iter_mut().enumerate() {
                    f(&mut state, t * chunk + j, slot);
                }
                if let Some(worker_start) = worker_start {
                    let ns = perthread::clamp_ns(worker_start.elapsed().as_nanos());
                    // One chunk per worker: the whole lifetime is busy.
                    perthread::record_busy(ns);
                    perthread::record_lifetime(ns);
                    perthread::record_items(len);
                }
            });
        }
    });
    if let Some(start) = start {
        let span = perthread::clamp_ns(start.elapsed().as_nanos());
        perthread::note_dispatch(threads, n, span);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that touch the global override / environment.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn explicit_request_wins_and_is_clamped() {
        let _g = lock();
        set_default_threads(0);
        assert_eq!(effective_threads(8, 3), 3, "clamped to work items");
        assert_eq!(effective_threads(2, 100), 2);
        assert_eq!(effective_threads(5, 0), 1, "no work still needs 1");
    }

    #[test]
    fn global_override_applies_when_unrequested() {
        let _g = lock();
        set_default_threads(3);
        assert_eq!(effective_threads(0, 100), 3);
        // An explicit request beats the override.
        assert_eq!(effective_threads(7, 100), 7);
        set_default_threads(0);
        assert!(effective_threads(0, 100) >= 1);
    }

    #[test]
    fn env_var_parsing_is_defensive() {
        let _g = lock();
        set_default_threads(0);
        assert!(env_threads().is_none() || env_threads().unwrap() > 0);
    }

    #[test]
    fn parse_threads_accepts_positive_integers_with_whitespace() {
        assert_eq!(parse_threads("4"), Some(4));
        assert_eq!(parse_threads(" 16\n"), Some(16));
        assert_eq!(parse_threads("1"), Some(1));
    }

    #[test]
    fn parse_threads_rejects_zero_negatives_and_garbage() {
        for bad in ["0", "-2", "four", "", "  ", "3.5", "8x", "+-1"] {
            assert_eq!(parse_threads(bad), None, "accepted {bad:?}");
        }
    }

    #[test]
    fn zero_work_items_still_resolves_one_worker() {
        let _g = lock();
        set_default_threads(0);
        // Every resolution tier must clamp up to 1 for empty work so
        // callers can divide by the result.
        assert_eq!(effective_threads(0, 0), 1);
        assert_eq!(effective_threads(64, 0), 1);
        set_default_threads(9);
        assert_eq!(effective_threads(0, 0), 1);
        set_default_threads(0);
    }

    #[test]
    fn fewer_work_items_than_threads_clamps_to_the_work() {
        let _g = lock();
        set_default_threads(0);
        assert_eq!(effective_threads(8, 3), 3);
        set_default_threads(8);
        assert_eq!(effective_threads(0, 3), 3, "global override clamped too");
        set_default_threads(0);
    }

    #[test]
    fn requests_beyond_hardware_parallelism_are_honored() {
        let _g = lock();
        set_default_threads(0);
        // An explicit request is a contract, not a hint: the resolver
        // clamps to the work size only, never to the core count (chunked
        // fan-out stays correct with oversubscribed workers).
        let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
        let oversubscribed = cores * 4;
        assert_eq!(
            effective_threads(oversubscribed, usize::MAX),
            oversubscribed
        );
    }

    #[test]
    fn results_are_position_deterministic_under_oversubscription() {
        let _g = lock();
        set_default_threads(0);
        let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
        let mut serial = vec![0u64; 53];
        for_each_indexed(&mut serial, 1, |i, slot| *slot = (i as u64) * 3 + 1);
        let mut wide = vec![0u64; 53];
        for_each_indexed(&mut wide, cores * 4, |i, slot| *slot = (i as u64) * 3 + 1);
        assert_eq!(serial, wide, "worker count leaked into slot contents");
    }

    #[test]
    fn for_each_indexed_fills_every_slot_once() {
        let _g = lock();
        set_default_threads(0);
        for threads in [1, 2, 3, 8] {
            let mut slots = vec![0usize; 37];
            for_each_indexed(&mut slots, threads, |i, slot| *slot = i * 2);
            let expect: Vec<usize> = (0..37).map(|i| i * 2).collect();
            assert_eq!(slots, expect, "threads={threads}");
        }
    }

    #[test]
    fn per_worker_state_is_isolated() {
        let _g = lock();
        set_default_threads(0);
        // Each worker counts its own chunk; the slice must still be a
        // per-index deterministic function.
        let mut slots = vec![0usize; 64];
        for_each_indexed_with(
            &mut slots,
            4,
            || 0usize,
            |seen, i, slot| {
                *seen += 1;
                *slot = i + 1;
            },
        );
        assert!(slots.iter().enumerate().all(|(i, &v)| v == i + 1));
    }

    #[test]
    fn empty_and_single_slices_run_inline() {
        let _g = lock();
        let mut empty: Vec<u32> = Vec::new();
        for_each_indexed(&mut empty, 4, |_, _| {});
        let mut one = vec![0u32];
        for_each_indexed(&mut one, 4, |i, slot| *slot = i as u32 + 9);
        assert_eq!(one, vec![9]);
    }

    #[test]
    fn fan_out_records_per_thread_attribution() {
        let _g = lock();
        set_default_threads(0);
        soi_obs::reset();
        let mut slots = vec![0u64; 40];
        for_each_indexed(&mut slots, 4, |i, slot| *slot = i as u64);
        let (threads, pool) = soi_obs::perthread::snapshot();
        assert_eq!(pool.dispatches, 1);
        assert_eq!(pool.items, 40);
        assert_eq!(pool.workers_max, 4);
        assert_eq!(threads.len(), 4, "one slot per worker");
        assert_eq!(threads.iter().map(|t| t.items).sum::<u64>(), 40);
        // Capacity = workers × dispatcher span always covers the summed
        // worker lifetimes (the residual is the imbalance term).
        assert!(pool.capacity_ns >= pool.lifetime_ns);
        assert_eq!(
            pool.imbalance_ns,
            pool.capacity_ns - pool.lifetime_ns,
            "attribution identity"
        );
        soi_obs::reset();
    }

    #[test]
    fn serial_fan_out_attributes_to_worker_zero() {
        let _g = lock();
        set_default_threads(0);
        soi_obs::reset();
        let mut slots = vec![0u64; 16];
        for_each_indexed(&mut slots, 1, |i, slot| *slot = i as u64 + 1);
        let (threads, pool) = soi_obs::perthread::snapshot();
        assert_eq!(pool.dispatches, 1);
        assert_eq!(pool.workers_max, 1);
        assert_eq!(threads.len(), 1);
        assert_eq!(threads[0].slot, 0);
        assert_eq!(threads[0].items, 16);
        assert_eq!(threads[0].busy_ns, threads[0].lifetime_ns);
        soi_obs::reset();
    }

    #[test]
    fn disabled_plane_keeps_fan_out_untimed() {
        let _g = lock();
        set_default_threads(0);
        soi_obs::reset();
        soi_obs::perthread::set_enabled(false);
        let mut slots = vec![0u64; 8];
        for_each_indexed(&mut slots, 2, |i, slot| *slot = i as u64 + 1);
        soi_obs::perthread::set_enabled(true);
        let (threads, pool) = soi_obs::perthread::snapshot();
        assert_eq!(pool.dispatches, 0, "disabled plane counted a dispatch");
        assert!(threads.iter().all(|t| t.busy_ns == 0 && t.items == 0));
        assert!(slots.iter().enumerate().all(|(i, &v)| v == i as u64 + 1));
        soi_obs::reset();
    }
}
