//! A count-min sketch: sublinear-memory frequency counting.
//!
//! Backs the STRIP-style streaming influence-probability learner
//! (`soi-problog::streaming`; Kutzkov et al., KDD 2013 — reference [26]
//! of the paper): counting `(u, v)` propagation events over a stream of
//! actions whose key space (all arcs) may not fit in memory.
//!
//! Standard guarantees: with width `w = ⌈e/ε⌉` and depth `d = ⌈ln(1/δ)⌉`,
//! the estimate overcounts by at most `ε · N` (stream length `N`) with
//! probability `1 − δ`, and never undercounts.

use crate::rng::mix64;

/// A count-min sketch over `u64` keys.
#[derive(Clone, Debug)]
pub struct CountMinSketch {
    width: usize,
    counters: Vec<u64>, // depth × width, row-major
    row_seeds: Vec<u64>,
    items: u64,
}

impl CountMinSketch {
    /// Creates a sketch with explicit dimensions.
    pub fn new(width: usize, depth: usize, seed: u64) -> Self {
        assert!(width >= 1 && depth >= 1, "dimensions must be positive");
        CountMinSketch {
            width,
            counters: vec![0; width * depth],
            row_seeds: (0..depth as u64).map(|i| mix64(seed ^ mix64(i))).collect(),
            items: 0,
        }
    }

    /// Creates a sketch sized for error `ε·N` with failure probability
    /// `δ` (standard parameterization).
    pub fn with_error(epsilon: f64, delta: f64, seed: u64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0);
        assert!(delta > 0.0 && delta < 1.0);
        let width = (std::f64::consts::E / epsilon).ceil() as usize;
        let depth = (1.0 / delta).ln().ceil().max(1.0) as usize;
        CountMinSketch::new(width, depth, seed)
    }

    #[inline]
    fn cell(&self, row: usize, key: u64) -> usize {
        let h = mix64(key ^ self.row_seeds[row]);
        row * self.width + (h % self.width as u64) as usize
    }

    /// Adds `count` occurrences of `key`.
    pub fn add(&mut self, key: u64, count: u64) {
        for row in 0..self.row_seeds.len() {
            let c = self.cell(row, key);
            self.counters[c] = self.counters[c].saturating_add(count);
        }
        self.items += count;
    }

    /// Point estimate of `key`'s count: never an undercount.
    pub fn estimate(&self, key: u64) -> u64 {
        (0..self.row_seeds.len())
            .map(|row| self.counters[self.cell(row, key)])
            .min()
            // The constructor asserts depth >= 1, so the iterator is
            // never empty. xtask-allow: panic_policy
            .expect("depth >= 1")
    }

    /// Total stream length observed.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// Heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.counters.len() * std::mem::size_of::<u64>()
    }
}

/// Packs an arc `(u, v)` into the sketch's `u64` key space.
#[inline]
pub fn arc_key(u: u32, v: u32) -> u64 {
    ((u as u64) << 32) | v as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_undercounts() {
        let mut cms = CountMinSketch::new(64, 4, 1);
        for key in 0..500u64 {
            cms.add(key, key % 7 + 1);
        }
        for key in 0..500u64 {
            assert!(cms.estimate(key) > key % 7, "undercount at {key}");
        }
        assert_eq!(cms.estimate(10_000), cms.estimate(10_000)); // deterministic
    }

    #[test]
    fn exact_when_oversized() {
        // Few keys, wide sketch: estimates are exact w.h.p.
        let mut cms = CountMinSketch::new(1024, 5, 2);
        for (key, count) in [(1u64, 10u64), (2, 20), (3, 30)] {
            cms.add(key, count);
        }
        assert_eq!(cms.estimate(1), 10);
        assert_eq!(cms.estimate(2), 20);
        assert_eq!(cms.estimate(3), 30);
        assert_eq!(cms.estimate(99), 0);
    }

    #[test]
    fn error_bound_holds_statistically() {
        let eps = 0.01;
        let mut cms = CountMinSketch::with_error(eps, 0.01, 3);
        let n_keys = 5_000u64;
        for key in 0..n_keys {
            cms.add(key, 1);
        }
        let bound = (eps * cms.items() as f64).ceil() as u64;
        let mut violations = 0;
        for key in 0..n_keys {
            if cms.estimate(key) > 1 + bound {
                violations += 1;
            }
        }
        assert!(
            violations <= (n_keys / 100).max(1),
            "{violations} estimates exceeded the ε-bound"
        );
    }

    #[test]
    fn arc_keys_are_injective() {
        assert_ne!(arc_key(1, 2), arc_key(2, 1));
        assert_eq!(arc_key(1, 2), arc_key(1, 2));
        assert_ne!(arc_key(0, 1), arc_key(1, 0));
        assert_ne!(arc_key(u32::MAX, 0), arc_key(0, u32::MAX));
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn rejects_zero_dimensions() {
        CountMinSketch::new(0, 1, 0);
    }
}
