//! Hygiene pass: docs at the top, tests in the crate.
//!
//! Two rules per package:
//!
//! 1. every `.rs` file under `src/` opens with `//!` module docs — the
//!    first non-blank line must be a `//!` comment (an initial
//!    `#![..]` attribute block may precede it);
//! 2. the package contains at least one `#[test]`, counting unit tests
//!    under `src/` and integration tests under `tests/`.
//!
//! Packages are discovered from `Cargo.toml` files that declare a
//! `[package]` section (a pure virtual workspace manifest has none).

use crate::report::{Finding, Pass};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Runs the hygiene pass over the whole tree.
///
/// `manifests` maps manifest paths to their text; `sources` maps Rust
/// file paths to their text. All paths are relative to the lint root.
pub fn check(
    manifests: &BTreeMap<PathBuf, String>,
    sources: &BTreeMap<PathBuf, String>,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (manifest, text) in manifests {
        if !declares_package(text) {
            continue;
        }
        let pkg_dir = manifest.parent().unwrap_or(Path::new("")).to_path_buf();
        let mut has_test = false;
        for (path, src) in sources {
            let Ok(rel) = path.strip_prefix(&pkg_dir) else {
                continue;
            };
            // Files of a *nested* package belong to that package.
            if owned_by_nested_package(manifests, &pkg_dir, path) {
                continue;
            }
            let top = rel.components().next();
            let in_src = top.is_some_and(|c| c.as_os_str() == "src");
            let in_tests = top.is_some_and(|c| c.as_os_str() == "tests");
            if (in_src || in_tests) && src.contains("#[test]") {
                has_test = true;
            }
            if in_src {
                if let Some(line) = missing_module_docs(src) {
                    findings.push(Finding {
                        pass: Pass::Hygiene,
                        path: path.clone(),
                        line,
                        message: "source file does not start with `//!` module docs".into(),
                    });
                }
            }
        }
        if !has_test {
            findings.push(Finding {
                pass: Pass::Hygiene,
                path: manifest.clone(),
                line: 1,
                message: "package has no `#[test]` (add a unit or integration test)".into(),
            });
        }
    }
    findings
}

fn declares_package(manifest_text: &str) -> bool {
    manifest_text.lines().any(|l| l.trim() == "[package]")
}

/// True when `path` is inside a package nested under `pkg_dir` (e.g. a
/// sub-crate's sources must not be attributed to the workspace root).
fn owned_by_nested_package(
    manifests: &BTreeMap<PathBuf, String>,
    pkg_dir: &Path,
    path: &Path,
) -> bool {
    manifests.keys().any(|m| {
        let dir = m.parent().unwrap_or(Path::new(""));
        dir != pkg_dir && dir.starts_with(pkg_dir) && path.starts_with(dir)
    })
}

/// Returns the offending line number when module docs are missing.
fn missing_module_docs(src: &str) -> Option<usize> {
    for (idx, line) in src.lines().enumerate() {
        let t = line.trim();
        if t.is_empty() || t.starts_with("#![") {
            continue;
        }
        return if t.starts_with("//!") {
            None
        } else {
            Some(idx + 1)
        };
    }
    Some(1) // empty file: no docs at all
}

#[cfg(test)]
mod tests {
    use super::*;

    fn maps(
        manifests: &[(&str, &str)],
        sources: &[(&str, &str)],
    ) -> (BTreeMap<PathBuf, String>, BTreeMap<PathBuf, String>) {
        (
            manifests
                .iter()
                .map(|(p, t)| (PathBuf::from(p), t.to_string()))
                .collect(),
            sources
                .iter()
                .map(|(p, t)| (PathBuf::from(p), t.to_string()))
                .collect(),
        )
    }

    const PKG: &str = "[package]\nname = \"x\"\n";

    #[test]
    fn documented_tested_crate_passes() {
        let (m, s) = maps(
            &[("Cargo.toml", PKG)],
            &[(
                "src/lib.rs",
                "//! Docs.\n#[cfg(test)]\nmod t { #[test]\nfn a() {} }\n",
            )],
        );
        assert!(check(&m, &s).is_empty());
    }

    #[test]
    fn missing_docs_flagged_at_first_code_line() {
        let (m, s) = maps(
            &[("Cargo.toml", PKG)],
            &[
                ("src/lib.rs", "//! Docs.\n#[test]\nfn t() {}\n"),
                ("src/other.rs", "\nuse std::fmt;\n"),
            ],
        );
        let f = check(&m, &s);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].path, PathBuf::from("src/other.rs"));
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn inner_attributes_may_precede_docs() {
        let src = "#![deny(missing_docs)]\n//! Docs.\nfn f() {}\n#[test]\nfn t() {}\n";
        let (m, s) = maps(&[("Cargo.toml", PKG)], &[("src/lib.rs", src)]);
        assert!(check(&m, &s).is_empty());
    }

    #[test]
    fn untested_crate_flagged_on_manifest() {
        let (m, s) = maps(
            &[("crates/x/Cargo.toml", PKG)],
            &[("crates/x/src/lib.rs", "//! Docs.\nfn f() {}\n")],
        );
        let f = check(&m, &s);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].path, PathBuf::from("crates/x/Cargo.toml"));
        assert!(f[0].message.contains("no `#[test]`"));
    }

    #[test]
    fn integration_tests_count() {
        let (m, s) = maps(
            &[("Cargo.toml", PKG)],
            &[
                ("src/lib.rs", "//! Docs.\n"),
                ("tests/e2e.rs", "#[test]\nfn t() {}\n"),
            ],
        );
        assert!(check(&m, &s).is_empty());
    }

    #[test]
    fn virtual_manifest_ignored_and_nesting_respected() {
        let virtual_ws = "[workspace]\nmembers = [\"crates/*\"]\n";
        let (m, s) = maps(
            &[("Cargo.toml", virtual_ws), ("crates/x/Cargo.toml", PKG)],
            &[("crates/x/src/lib.rs", "//! Docs.\n#[test]\nfn t() {}\n")],
        );
        assert!(check(&m, &s).is_empty());
    }

    #[test]
    fn root_package_does_not_claim_subcrate_files() {
        // Root declares [package]; sub-crate files must not satisfy the
        // root's test requirement.
        let (m, s) = maps(
            &[("Cargo.toml", PKG), ("crates/x/Cargo.toml", PKG)],
            &[
                ("src/lib.rs", "//! Docs.\n"),
                ("crates/x/src/lib.rs", "//! Docs.\n#[test]\nfn t() {}\n"),
            ],
        );
        let f = check(&m, &s);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].path, PathBuf::from("Cargo.toml"));
    }
}
