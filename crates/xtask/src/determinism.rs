//! Determinism pass: same seed, same bytes.
//!
//! Two families of violations:
//!
//! 1. **Entropy-seeded randomness.** Any use of `thread_rng`,
//!    `rand::rng()`, `from_entropy`, or `seed_from_entropy` makes output
//!    depend on process entropy. The workspace RNG
//!    (`soi_util::rng::Xoshiro256pp`) is constructed from explicit seeds
//!    only; experiment binaries take `--seed`.
//!
//! 2. **Unordered-container emission.** Iterating a `HashMap`/`HashSet`
//!    in a file that writes program output (TSV rows, `println!`) makes
//!    row order depend on `RandomState`. The pass tracks identifiers
//!    bound or typed as `HashMap`/`HashSet` within each file and flags
//!    iteration over them (`.iter()`, `.keys()`, `.values()`,
//!    `.into_iter()`, `for .. in`) when the file also emits output.
//!    Sort into a `Vec` first, use `BTreeMap`/`BTreeSet`, or — when the
//!    iteration provably cannot reach the output — annotate with
//!    `// xtask-allow: determinism`.
//!
//! The scan runs on comment- and string-stripped code, so mentioning a
//! forbidden name in docs is fine. Unlike the panic-policy pass, test
//! code is *not* exempt: tests assert on golden output, so they must be
//! deterministic too.

use crate::report::{Finding, Pass};
use crate::source::{ident_match, SourceFile};
use std::path::Path;

/// Entropy sources that are always forbidden (identifier-boundary match).
const FORBIDDEN_ENTROPY: &[&str] = &["thread_rng", "from_entropy", "seed_from_entropy"];

/// Substring markers that a file writes program output.
const EMIT_MARKERS: &[&str] = &["println!", "print!(", "TsvWriter", "stdout("];

/// Method suffixes that iterate a tracked container.
const ITER_CALLS: &[&str] = &[
    ".iter()",
    ".keys()",
    ".values()",
    ".into_iter()",
    ".drain()",
];

/// Runs the determinism pass over one file.
pub fn check(path: &Path, file: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();

    let emits = file
        .lines
        .iter()
        .any(|l| EMIT_MARKERS.iter().any(|m| l.code.contains(m)));

    // Identifiers bound or typed as HashMap/HashSet anywhere in the file.
    let mut unordered: Vec<String> = Vec::new();
    for line in &file.lines {
        if line.code.contains("HashMap") || line.code.contains("HashSet") {
            if let Some(name) = binding_name(&line.code) {
                if !unordered.contains(&name) {
                    unordered.push(name);
                }
            }
        }
    }

    for (idx, line) in file.lines.iter().enumerate() {
        let lineno = idx + 1;
        if line.allows(Pass::Determinism.name()) {
            continue;
        }
        for pat in FORBIDDEN_ENTROPY {
            if ident_match(&line.code, pat).is_some() {
                findings.push(Finding {
                    pass: Pass::Determinism,
                    path: path.to_path_buf(),
                    line: lineno,
                    message: format!(
                        "`{pat}` seeds from process entropy; construct the RNG from an \
                         explicit seed (soi_util::rng::Xoshiro256pp::seed_from_u64)"
                    ),
                });
            }
        }
        if line.code.contains("rand::rng(") {
            findings.push(Finding {
                pass: Pass::Determinism,
                path: path.to_path_buf(),
                line: lineno,
                message: "`rand::rng()` is entropy-seeded; use an explicit seed".into(),
            });
        }
        if emits {
            for name in &unordered {
                if iterates(&line.code, name) {
                    findings.push(Finding {
                        pass: Pass::Determinism,
                        path: path.to_path_buf(),
                        line: lineno,
                        message: format!(
                            "iteration over unordered container `{name}` in a file that \
                             emits output; sort into a Vec or use BTreeMap/BTreeSet \
                             (or annotate `// xtask-allow: determinism`)"
                        ),
                    });
                }
            }
        }
    }
    findings
}

/// Extracts the identifier bound on a line that mentions `HashMap`/`HashSet`:
/// `let [mut] name[: T] = ...` or a struct field / parameter `name: HashMap<..>`.
fn binding_name(code: &str) -> Option<String> {
    let take_ident = |s: &str| -> Option<String> {
        let t: String = s
            .trim_start()
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if t.is_empty() || t.chars().next().is_some_and(|c| c.is_ascii_digit()) {
            None
        } else {
            Some(t)
        }
    };
    if let Some(at) = ident_match(code, "let") {
        let mut rest = &code[at + 3..];
        let trimmed = rest.trim_start();
        if let Some(stripped) = trimmed.strip_prefix("mut ") {
            rest = stripped;
        } else {
            rest = trimmed;
        }
        return take_ident(rest);
    }
    // `name: HashMap<..>` (field or parameter) — identifier before the
    // first `:` that precedes the container type.
    let ty_at = code.find("HashMap").or_else(|| code.find("HashSet"))?;
    let before = &code[..ty_at];
    let colon = before.rfind(':')?;
    let ident_end = before[..colon].trim_end();
    let start = ident_end
        .rfind(|c: char| !(c.is_alphanumeric() || c == '_'))
        .map(|p| p + 1)
        .unwrap_or(0);
    let name = &ident_end[start..];
    if name.is_empty() || name.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        None
    } else {
        Some(name.to_string())
    }
}

/// Whether the line iterates the container `name`.
fn iterates(code: &str, name: &str) -> bool {
    for call in ITER_CALLS {
        let pat = format!("{name}{call}");
        if ident_match(code, &pat).is_some() {
            return true;
        }
    }
    if let Some(in_at) = ident_match(code, "in") {
        if code.contains("for ") {
            let after = code[in_at + 2..].trim_start().trim_start_matches('&');
            let head: String = after
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            return head == name;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::scan;
    use std::path::PathBuf;

    fn run(src: &str) -> Vec<Finding> {
        check(&PathBuf::from("x.rs"), &scan(src))
    }

    #[test]
    fn entropy_sources_flagged() {
        let f = run("let mut rng = thread_rng();\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 1);
        assert!(run("let mut rng = rand::rng();\n").len() == 1);
        assert!(run("let r = SmallRng::from_entropy();\n").len() == 1);
    }

    #[test]
    fn seeded_rng_and_docs_mentions_pass() {
        assert!(run("let rng = Xoshiro256pp::seed_from_u64(7);\n").is_empty());
        assert!(run("// thread_rng is forbidden here\n").is_empty());
        assert!(run("let s = \"thread_rng\";\n").is_empty());
    }

    #[test]
    fn allow_comment_suppresses() {
        let f = run("let r = thread_rng(); // xtask-allow: determinism\n");
        assert!(f.is_empty());
    }

    #[test]
    fn hashmap_iteration_with_emission_flagged() {
        let src = "use std::collections::HashMap;\n\
                   fn dump() {\n\
                   let mut counts: HashMap<u32, u32> = HashMap::new();\n\
                   for (k, v) in counts.iter() {\n\
                   println!(\"{k}\\t{v}\");\n\
                   }\n\
                   }\n";
        let f = run(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 4);
        assert!(f[0].message.contains("counts"));
    }

    #[test]
    fn for_loop_over_ref_is_flagged() {
        let src = "fn dump(seen: HashSet<u32>) {\n\
                   for v in &seen { println!(\"{v}\"); }\n\
                   }\n";
        let f = run(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn hashmap_without_emission_is_fine() {
        let src = "fn count() -> usize {\n\
                   let m: HashMap<u32, u32> = HashMap::new();\n\
                   m.iter().count()\n\
                   }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn sorted_snapshot_passes() {
        let src = "fn dump(m: HashMap<u32, u32>) {\n\
                   let mut rows: Vec<_> = m.iter().collect(); // xtask-allow: determinism\n\
                   rows.sort();\n\
                   for (k, v) in rows { println!(\"{k}\\t{v}\"); }\n\
                   }\n";
        assert!(run(src).is_empty());
    }
}
