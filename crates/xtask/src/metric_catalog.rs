//! Metric-catalog pass: every metric the code registers is documented,
//! and every documented metric still exists.
//!
//! `docs/OBSERVABILITY.md` carries the metric catalog between
//! `<!-- metric-catalog:begin -->` and `<!-- metric-catalog:end -->`
//! markers: markdown table rows whose first backtick span is the metric
//! name. This pass extracts every metric name registered in source —
//! the first string literal of `counter("…")`, `gauge("…")`,
//! `histogram("…")`, `wall_hist("…")`, `counter_add!("…")`, and
//! `hist_observe!("…")` calls — and checks both directions:
//!
//! * a registered name missing from the catalog flags the registration
//!   site (the doc rotted behind the code);
//! * a cataloged name no longer registered anywhere flags the catalog
//!   row (the code rotted behind the doc).
//!
//! Names are matched in the **raw** line text because [`crate::source`]
//! blanks string-literal contents in the lexed form; test lines and
//! `test.`-prefixed names are skipped (unit-test scratch metrics are
//! not part of the public surface). Dynamically built names cannot be
//! extracted and are exempt by construction. Suppress a deliberate
//! undocumented metric with `// xtask-allow: metric_catalog`.
//!
//! Fixture trees have no `docs/OBSERVABILITY.md`; a missing doc skips
//! the pass entirely rather than flagging every metric in a tree that
//! never promised a catalog.

use crate::report::{Finding, Pass};
use crate::source::SourceFile;
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// Marker opening the catalog region in the doc.
pub const BEGIN_MARKER: &str = "<!-- metric-catalog:begin -->";
/// Marker closing the catalog region in the doc.
pub const END_MARKER: &str = "<!-- metric-catalog:end -->";
/// The catalog's home, relative to the lint root.
pub const DOC_PATH: &str = "docs/OBSERVABILITY.md";

/// Call forms whose first string literal is a metric name.
const REGISTRATION_CALLS: &[&str] = &[
    "counter(\"",
    "gauge(\"",
    "histogram(\"",
    "wall_hist(\"",
    "counter_add!(\"",
    "hist_observe!(\"",
];

/// Runs the metric-catalog pass over the whole tree. `root` locates the
/// catalog document; `scanned` are the lexed sources.
pub fn check(root: &Path, scanned: &BTreeMap<PathBuf, SourceFile>) -> Vec<Finding> {
    let doc_text = match std::fs::read_to_string(root.join(DOC_PATH)) {
        Ok(text) => text,
        // No doc, no catalog contract (lint-test fixture trees).
        Err(_) => return Vec::new(),
    };
    let mut findings = Vec::new();
    let catalog = match parse_catalog(&doc_text) {
        Some(catalog) => catalog,
        None => {
            findings.push(Finding {
                pass: Pass::MetricCatalog,
                path: PathBuf::from(DOC_PATH),
                line: 1,
                message: format!(
                    "metric catalog markers missing; wrap the catalog table in \
                     `{BEGIN_MARKER}` / `{END_MARKER}`"
                ),
            });
            return findings;
        }
    };

    let registered = registered_metrics(scanned);
    for (name, sites) in &registered {
        if !catalog.contains_key(name) {
            let (path, line) = &sites[0];
            findings.push(Finding {
                pass: Pass::MetricCatalog,
                path: path.clone(),
                line: *line,
                message: format!(
                    "metric `{name}` is registered here but missing from the \
                     {DOC_PATH} catalog; add a row (or `// xtask-allow: metric_catalog`)"
                ),
            });
        }
    }
    for (name, line) in &catalog {
        if !registered.contains_key(name) {
            findings.push(Finding {
                pass: Pass::MetricCatalog,
                path: PathBuf::from(DOC_PATH),
                line: *line,
                message: format!(
                    "cataloged metric `{name}` is not registered anywhere in the \
                     tree; delete the row or restore the metric"
                ),
            });
        }
    }
    findings
}

/// Extracts the catalog as `name -> 1-based doc line`. `None` when the
/// marker pair is absent or inverted.
fn parse_catalog(doc: &str) -> Option<BTreeMap<String, usize>> {
    let mut catalog = BTreeMap::new();
    let mut inside = false;
    let mut saw_region = false;
    for (idx, line) in doc.lines().enumerate() {
        if line.contains(BEGIN_MARKER) {
            inside = true;
            saw_region = true;
            continue;
        }
        if line.contains(END_MARKER) {
            if !inside {
                return None;
            }
            inside = false;
            continue;
        }
        if !inside {
            continue;
        }
        if let Some(name) = table_row_metric(line) {
            catalog.entry(name).or_insert(idx + 1);
        }
    }
    if !saw_region || inside {
        return None;
    }
    Some(catalog)
}

/// The first backtick span of a markdown table row, when it looks like
/// a metric name. Header and separator rows have no backtick span.
fn table_row_metric(line: &str) -> Option<String> {
    let trimmed = line.trim();
    if !trimmed.starts_with('|') {
        return None;
    }
    let open = trimmed.find('`')?;
    let rest = &trimmed[open + 1..];
    let close = rest.find('`')?;
    let name = &rest[..close];
    let valid = !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || ".-_".contains(c));
    valid.then(|| name.to_string())
}

/// Every metric name registered in non-test code, with the sites where
/// it appears (sorted by the BTreeMap walk, so the first site is the
/// canonical anchor for findings).
fn registered_metrics(
    scanned: &BTreeMap<PathBuf, SourceFile>,
) -> BTreeMap<String, Vec<(PathBuf, usize)>> {
    let mut registered: BTreeMap<String, Vec<(PathBuf, usize)>> = BTreeMap::new();
    for (path, file) in scanned {
        for (idx, line) in file.lines.iter().enumerate() {
            if line.in_test || line.allows(Pass::MetricCatalog.name()) {
                continue;
            }
            for name in metric_names_in(&line.raw) {
                if name.starts_with("test.") {
                    continue;
                }
                registered
                    .entry(name)
                    .or_default()
                    .push((path.clone(), idx + 1));
            }
        }
    }
    registered
}

/// Metric-name literals in one raw source line.
fn metric_names_in(raw: &str) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for call in REGISTRATION_CALLS {
        let mut from = 0;
        while let Some(rel) = raw[from..].find(call) {
            let at = from + rel;
            // Ident boundary on the left so a `wall_hist` call is not
            // double-counted by a shorter suffix pattern.
            let boundary = at == 0
                || !raw[..at]
                    .chars()
                    .next_back()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_');
            let start = at + call.len();
            if let Some(close) = raw[start..].find('"') {
                let name = &raw[start..start + close];
                let valid = boundary
                    && !name.is_empty()
                    && name
                        .chars()
                        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || ".-_".contains(c));
                if valid {
                    names.insert(name.to_string());
                }
            }
            from = at + call.len();
        }
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::scan;

    fn doc(rows: &str) -> String {
        format!("# Obs\n\n{BEGIN_MARKER}\n| metric | type |\n|---|---|\n{rows}{END_MARKER}\n")
    }

    fn tree(src: &str) -> BTreeMap<PathBuf, SourceFile> {
        [(PathBuf::from("crates/x/src/lib.rs"), scan(src))]
            .into_iter()
            .collect()
    }

    fn check_with(doc_text: &str, src: &str) -> Vec<Finding> {
        let root = std::env::temp_dir().join(format!(
            "xtask-metric-catalog-{}-{:p}",
            std::process::id(),
            &doc_text
        ));
        std::fs::create_dir_all(root.join("docs")).unwrap();
        std::fs::write(root.join(DOC_PATH), doc_text).unwrap();
        let findings = check(&root, &tree(src));
        std::fs::remove_dir_all(&root).unwrap();
        findings
    }

    #[test]
    fn documented_metrics_pass_both_directions() {
        let findings = check_with(
            &doc("| `app.runs` | counter |\n| `app.size` | histogram |\n"),
            "fn f() { soi_obs::counter(\"app.runs\").add(1); \
             soi_obs::hist_observe!(\"app.size\", 3.0); }\n",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn unregistered_catalog_row_and_undocumented_metric_both_flag() {
        let findings = check_with(
            &doc("| `app.gone` | counter |\n"),
            "fn f() { soi_obs::gauge(\"app.depth\").set(1.0); }\n",
        );
        assert_eq!(findings.len(), 2, "{findings:?}");
        let messages: Vec<&str> = findings.iter().map(|f| f.message.as_str()).collect();
        assert!(messages.iter().any(|m| m.contains("`app.depth`")));
        assert!(messages.iter().any(|m| m.contains("`app.gone`")));
        let doc_finding = findings
            .iter()
            .find(|f| f.path == Path::new(DOC_PATH))
            .unwrap();
        assert_eq!(doc_finding.line, 6, "row line within the doc");
    }

    #[test]
    fn test_lines_test_names_and_allows_are_skipped() {
        let src = "fn f() { soi_obs::counter(\"test.scratch\").add(1); }\n\
                   // per-run scratch series, intentionally uncataloged\n\
                   // xtask-allow: metric_catalog\n\
                   fn g() { soi_obs::counter(\"app.scratch\").add(1); }\n\
                   #[cfg(test)]\nmod t {\n    fn h() { soi_obs::counter(\"app.only_in_test\").add(1); }\n}\n";
        let findings = check_with(&doc(""), src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn missing_markers_flag_the_doc_once() {
        let findings = check_with("# Obs\nno markers here\n", "fn f() {}\n");
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("markers missing"));
        assert_eq!(findings[0].path, PathBuf::from(DOC_PATH));
    }

    #[test]
    fn missing_doc_skips_the_pass() {
        let root = std::env::temp_dir().join(format!("xtask-metric-nodoc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).unwrap();
        let findings = check(
            &root,
            &tree("fn f() { soi_obs::counter(\"app.x\").add(1); }\n"),
        );
        assert!(findings.is_empty(), "{findings:?}");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn wall_hist_does_not_double_match_as_hist() {
        let names = metric_names_in("soi_obs::wall_hist(\"app.latency\").observe_ns(5);");
        assert_eq!(names.len(), 1);
        assert!(names.contains("app.latency"));
    }

    #[test]
    fn catalog_rows_parse_names_from_backtick_spans() {
        assert_eq!(
            table_row_metric("| `server.requests_total` | counter | every request |"),
            Some("server.requests_total".to_string())
        );
        assert_eq!(table_row_metric("|---|---|"), None);
        assert_eq!(table_row_metric("| metric | type |"), None);
        assert_eq!(table_row_metric("plain prose `code`"), None);
        assert_eq!(table_row_metric("| `Not A Metric` |"), None);
    }
}
