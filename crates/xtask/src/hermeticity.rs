//! Hermeticity pass: the workspace builds with zero registry access.
//!
//! Parses every `Cargo.toml` and rejects dependency entries that would
//! be fetched from an external registry — anything that is neither a
//! `path` dependency nor `workspace = true` inheritance. The allowlist
//! of permitted external crates is empty by default: the build is fully
//! vendored-free and offline. A manifest line may also be acknowledged
//! explicitly with `# xtask-allow: hermeticity`.
//!
//! The parser is a minimal line-oriented TOML reader covering the
//! manifest shapes used here: `[.*dependencies]` sections with inline
//! entries (`name = "1.0"`, `name = { .. }`, `name.workspace = true`)
//! and expanded `[dependencies.name]` tables.

use crate::report::{Finding, Pass};
use std::path::Path;

/// External crates permitted from a registry. Empty: the build is
/// hermetic. Add names here (with a comment why) to open the gate.
const ALLOWED_EXTERNAL: &[&str] = &[];

/// Runs the hermeticity pass over one manifest's text.
pub fn check(path: &Path, text: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut in_dep_section = false;
    // An expanded `[dependencies.<name>]` table: (name, header line,
    // saw path/workspace key).
    let mut dep_table: Option<(String, usize, bool)> = None;

    let flush_table = |table: &mut Option<(String, usize, bool)>, out: &mut Vec<Finding>| {
        if let Some((name, header, hermetic)) = table.take() {
            if !hermetic && !ALLOWED_EXTERNAL.contains(&name.as_str()) {
                out.push(external_finding(path, header, &name));
            }
        }
    };

    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('[') {
            flush_table(&mut dep_table, &mut findings);
            let section = line.trim_matches(['[', ']']);
            if let Some((kind, name)) = section.split_once('.') {
                // `[dependencies.foo]` or `[workspace.dependencies]` or
                // `[target.'cfg(..)'.dependencies]`.
                if kind.ends_with("dependencies") && !raw.contains("xtask-allow: hermeticity") {
                    dep_table = Some((name.to_string(), idx + 1, false));
                    in_dep_section = false;
                    continue;
                }
                in_dep_section = section.ends_with("dependencies");
            } else {
                in_dep_section = section.ends_with("dependencies");
            }
            continue;
        }
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((_, _, hermetic)) = dep_table.as_mut() {
            if let Some((key, _)) = line.split_once('=') {
                let key = key.trim();
                if key == "path" || key == "workspace" {
                    *hermetic = true;
                }
            }
            continue;
        }
        if !in_dep_section {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        if raw.contains("xtask-allow: hermeticity") {
            continue;
        }
        let key = key.trim().trim_matches('"');
        // `name.workspace = true` inherits from the workspace table.
        let name = key.split('.').next().unwrap_or(key).to_string();
        if key.ends_with(".workspace") {
            continue;
        }
        let value = value.trim();
        if value.contains("path") && value.contains('=') && value_has_key(value, "path") {
            continue;
        }
        if value_has_key(value, "workspace") {
            continue;
        }
        if ALLOWED_EXTERNAL.contains(&name.as_str()) {
            continue;
        }
        findings.push(external_finding(path, idx + 1, &name));
    }
    flush_table(&mut dep_table, &mut findings);
    findings
}

fn external_finding(path: &Path, line: usize, name: &str) -> Finding {
    Finding {
        pass: Pass::Hermeticity,
        path: path.to_path_buf(),
        line,
        message: format!(
            "dependency `{name}` resolves from an external registry; use a `path` \
             dependency, inherit via `workspace = true`, or add it to the xtask \
             allowlist with a justification"
        ),
    }
}

/// Whether an inline table value contains `key =` as a real key.
fn value_has_key(value: &str, key: &str) -> bool {
    value
        .trim_matches(['{', '}'])
        .split(',')
        .any(|part| part.split_once('=').is_some_and(|(k, _)| k.trim() == key))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run(text: &str) -> Vec<Finding> {
        check(&PathBuf::from("Cargo.toml"), text)
    }

    #[test]
    fn registry_dep_flagged_with_line() {
        let text = "[package]\nname = \"x\"\n\n[dependencies]\nrand = \"0.10\"\n";
        let f = run(text);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 5);
        assert!(f[0].message.contains("rand"));
    }

    #[test]
    fn path_and_workspace_deps_pass() {
        let text = "[dependencies]\n\
                    soi-util = { path = \"../util\" }\n\
                    soi-graph.workspace = true\n\
                    soi-core = { workspace = true }\n";
        assert!(run(text).is_empty());
    }

    #[test]
    fn workspace_dependencies_table_checked() {
        let text = "[workspace.dependencies]\n\
                    soi-util = { path = \"crates/util\" }\n\
                    criterion = \"0.8\"\n";
        let f = run(text);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
        assert!(f[0].message.contains("criterion"));
    }

    #[test]
    fn dev_and_build_deps_checked() {
        let text = "[dev-dependencies]\nproptest = \"1\"\n\n[build-dependencies]\ncc = \"1\"\n";
        assert_eq!(run(text).len(), 2);
    }

    #[test]
    fn expanded_dep_table_checked() {
        let bad = "[dependencies.serde]\nversion = \"1\"\nfeatures = [\"derive\"]\n";
        let f = run(bad);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 1);
        let good = "[dependencies.soi-util]\npath = \"../util\"\n";
        assert!(run(good).is_empty());
    }

    #[test]
    fn allow_comment_suppresses() {
        let text = "[dependencies]\nlibm = \"0.2\" # xtask-allow: hermeticity\n";
        assert!(run(text).is_empty());
    }

    #[test]
    fn non_dependency_sections_ignored() {
        let text = "[package]\nversion = \"0.1.0\"\n[features]\ndefault = []\n";
        assert!(run(text).is_empty());
    }
}
