//! Hermeticity pass: the workspace builds with zero registry access and
//! computes with zero network access.
//!
//! **Manifests.** Parses every `Cargo.toml` and rejects dependency
//! entries that would be fetched from an external registry — anything
//! that is neither a `path` dependency nor `workspace = true`
//! inheritance. The allowlist of permitted external crates is empty by
//! default: the build is fully vendored-free and offline. A manifest
//! line may also be acknowledged explicitly with
//! `# xtask-allow: hermeticity`.
//!
//! **Sources.** Flags `std::net` (and the socket types it exports) in
//! every Rust file outside `crates/server/` — the serving daemon is the
//! single sanctioned network boundary, so algorithms, pipelines, and
//! their tests stay runnable in a fully sandboxed environment. Applies
//! to test code too: integration tests elsewhere must drive the daemon
//! through the `soi` binary, not open sockets of their own.
//!
//! The manifest parser is a minimal line-oriented TOML reader covering
//! the shapes used here: `[.*dependencies]` sections with inline
//! entries (`name = "1.0"`, `name = { .. }`, `name.workspace = true`)
//! and expanded `[dependencies.name]` tables.

use crate::report::{Finding, Pass};
use crate::source::{ident_match, SourceFile};
use std::path::Path;

/// External crates permitted from a registry. Empty: the build is
/// hermetic. Add names here (with a comment why) to open the gate.
const ALLOWED_EXTERNAL: &[&str] = &[];

/// The one path prefix where `std::net` is sanctioned: the query-serving
/// daemon (`soi-server`) and its tests.
const NET_ALLOWED_PREFIX: &str = "crates/server";

/// Socket-type identifiers flagged even when imported without a
/// `std::net` path in sight (`use std::net::*` or re-exports).
const NET_IDENTS: &[&str] = &["TcpListener", "TcpStream", "UdpSocket", "SocketAddr"];

/// Runs the source half of the hermeticity pass over one Rust file:
/// no network primitives outside the serving crate.
pub fn check_source(path: &Path, file: &SourceFile) -> Vec<Finding> {
    if path.starts_with(NET_ALLOWED_PREFIX) {
        return Vec::new();
    }
    let mut findings = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        if line.allows(Pass::Hermeticity.name()) {
            continue;
        }
        let hit = if line.code.contains("std::net") {
            Some("std::net")
        } else {
            NET_IDENTS
                .iter()
                .find(|ident| ident_match(&line.code, ident).is_some())
                .copied()
        };
        if let Some(what) = hit {
            findings.push(Finding {
                pass: Pass::Hermeticity,
                path: path.to_path_buf(),
                line: idx + 1,
                message: format!(
                    "`{what}` outside `{NET_ALLOWED_PREFIX}/`; networking is confined to \
                     the soi-server crate — talk to the daemon through the `soi` binary \
                     instead, or justify with `xtask-allow: hermeticity`"
                ),
            });
        }
    }
    findings
}

/// Runs the hermeticity pass over one manifest's text.
pub fn check(path: &Path, text: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut in_dep_section = false;
    // An expanded `[dependencies.<name>]` table: (name, header line,
    // saw path/workspace key).
    let mut dep_table: Option<(String, usize, bool)> = None;

    let flush_table = |table: &mut Option<(String, usize, bool)>, out: &mut Vec<Finding>| {
        if let Some((name, header, hermetic)) = table.take() {
            if !hermetic && !ALLOWED_EXTERNAL.contains(&name.as_str()) {
                out.push(external_finding(path, header, &name));
            }
        }
    };

    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('[') {
            flush_table(&mut dep_table, &mut findings);
            let section = line.trim_matches(['[', ']']);
            if let Some((kind, name)) = section.split_once('.') {
                // `[dependencies.foo]` or `[workspace.dependencies]` or
                // `[target.'cfg(..)'.dependencies]`.
                if kind.ends_with("dependencies") && !raw.contains("xtask-allow: hermeticity") {
                    dep_table = Some((name.to_string(), idx + 1, false));
                    in_dep_section = false;
                    continue;
                }
                in_dep_section = section.ends_with("dependencies");
            } else {
                in_dep_section = section.ends_with("dependencies");
            }
            continue;
        }
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((_, _, hermetic)) = dep_table.as_mut() {
            if let Some((key, _)) = line.split_once('=') {
                let key = key.trim();
                if key == "path" || key == "workspace" {
                    *hermetic = true;
                }
            }
            continue;
        }
        if !in_dep_section {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        if raw.contains("xtask-allow: hermeticity") {
            continue;
        }
        let key = key.trim().trim_matches('"');
        // `name.workspace = true` inherits from the workspace table.
        let name = key.split('.').next().unwrap_or(key).to_string();
        if key.ends_with(".workspace") {
            continue;
        }
        let value = value.trim();
        if value.contains("path") && value.contains('=') && value_has_key(value, "path") {
            continue;
        }
        if value_has_key(value, "workspace") {
            continue;
        }
        if ALLOWED_EXTERNAL.contains(&name.as_str()) {
            continue;
        }
        findings.push(external_finding(path, idx + 1, &name));
    }
    flush_table(&mut dep_table, &mut findings);
    findings
}

fn external_finding(path: &Path, line: usize, name: &str) -> Finding {
    Finding {
        pass: Pass::Hermeticity,
        path: path.to_path_buf(),
        line,
        message: format!(
            "dependency `{name}` resolves from an external registry; use a `path` \
             dependency, inherit via `workspace = true`, or add it to the xtask \
             allowlist with a justification"
        ),
    }
}

/// Whether an inline table value contains `key =` as a real key.
fn value_has_key(value: &str, key: &str) -> bool {
    value
        .trim_matches(['{', '}'])
        .split(',')
        .any(|part| part.split_once('=').is_some_and(|(k, _)| k.trim() == key))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run(text: &str) -> Vec<Finding> {
        check(&PathBuf::from("Cargo.toml"), text)
    }

    #[test]
    fn registry_dep_flagged_with_line() {
        let text = "[package]\nname = \"x\"\n\n[dependencies]\nrand = \"0.10\"\n";
        let f = run(text);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 5);
        assert!(f[0].message.contains("rand"));
    }

    #[test]
    fn path_and_workspace_deps_pass() {
        let text = "[dependencies]\n\
                    soi-util = { path = \"../util\" }\n\
                    soi-graph.workspace = true\n\
                    soi-core = { workspace = true }\n";
        assert!(run(text).is_empty());
    }

    #[test]
    fn workspace_dependencies_table_checked() {
        let text = "[workspace.dependencies]\n\
                    soi-util = { path = \"crates/util\" }\n\
                    criterion = \"0.8\"\n";
        let f = run(text);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
        assert!(f[0].message.contains("criterion"));
    }

    #[test]
    fn dev_and_build_deps_checked() {
        let text = "[dev-dependencies]\nproptest = \"1\"\n\n[build-dependencies]\ncc = \"1\"\n";
        assert_eq!(run(text).len(), 2);
    }

    #[test]
    fn expanded_dep_table_checked() {
        let bad = "[dependencies.serde]\nversion = \"1\"\nfeatures = [\"derive\"]\n";
        let f = run(bad);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 1);
        let good = "[dependencies.soi-util]\npath = \"../util\"\n";
        assert!(run(good).is_empty());
    }

    #[test]
    fn allow_comment_suppresses() {
        let text = "[dependencies]\nlibm = \"0.2\" # xtask-allow: hermeticity\n";
        assert!(run(text).is_empty());
    }

    #[test]
    fn non_dependency_sections_ignored() {
        let text = "[package]\nversion = \"0.1.0\"\n[features]\ndefault = []\n";
        assert!(run(text).is_empty());
    }

    fn run_src(path: &str, src: &str) -> Vec<Finding> {
        check_source(&PathBuf::from(path), &crate::source::scan(src))
    }

    #[test]
    fn net_use_flagged_outside_server() {
        let src = "//! Doc.\nuse std::net::TcpListener;\nfn f() {}\n";
        let f = run_src("crates/graph/src/lib.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 2);
        assert!(f[0].message.contains("std::net"), "{}", f[0].message);
    }

    #[test]
    fn socket_idents_flagged_without_a_path() {
        let src = "fn f(l: TcpStream) {}\n";
        let f = run_src("crates/cli/tests/e2e.rs", src);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("TcpStream"));
    }

    #[test]
    fn server_crate_is_exempt() {
        let src = "use std::net::{TcpListener, TcpStream};\n";
        assert!(run_src("crates/server/src/daemon.rs", src).is_empty());
        assert!(run_src("crates/server/tests/robustness.rs", src).is_empty());
    }

    #[test]
    fn net_in_comments_strings_and_allows_passes() {
        let src = "//! Talks about std::net in docs only.\n\
                   // a TcpListener comment\n\
                   fn f() -> &'static str { \"std::net\" }\n\
                   use std::net::UdpSocket; // xtask-allow: hermeticity — justified\n";
        assert!(run_src("crates/graph/src/lib.rs", src).is_empty());
    }

    #[test]
    fn net_applies_to_test_code_too() {
        let src = "//! Doc.\n#[cfg(test)]\nmod tests {\n    use std::net::TcpStream;\n}\n";
        assert_eq!(run_src("crates/core/src/lib.rs", src).len(), 1);
    }
}
