//! # xtask
//!
//! Workspace static analysis for the Spheres-of-Influence repo, run as
//! `cargo xtask lint` (alias for `cargo run -p xtask -- lint`). Eight
//! passes enforce the contracts the experiments depend on:
//!
//! | pass               | contract                                              |
//! |--------------------|-------------------------------------------------------|
//! | `determinism`      | no entropy-seeded RNGs; no unordered-map emission     |
//! | `panic_policy`     | library code returns `Result`, it does not abort      |
//! | `hermeticity`      | no registry dependencies; `std::net` only in `server` |
//! | `hygiene`          | `//!` docs on every `src/*.rs`; ≥ 1 test per package  |
//! | `observability`    | library code logs via `soi-obs`, not println/eprintln |
//! | `concurrency`      | one global lock order; no guard across blocking calls;|
//! |                    | justified atomic orderings; scoped spawns only        |
//! | `metric_catalog`   | registered metrics ↔ docs/OBSERVABILITY.md catalog   |
//! | `failpoint_catalog`| planted failpoints ↔ docs/ROBUSTNESS.md catalog      |
//!
//! Findings can be suppressed per line with `// xtask-allow: <pass>`
//! (`#` comments in manifests), which is expected to sit next to a
//! justification. The runtime counterpart of these static checks lives
//! in `soi_util::invariant`. See `docs/STATIC_ANALYSIS.md` for the full
//! policy.

pub mod concurrency;
pub mod determinism;
pub mod failpoint_catalog;
pub mod hermeticity;
pub mod hygiene;
pub mod metric_catalog;
pub mod observability;
pub mod panic_policy;
pub mod report;
pub mod source;
pub mod walk;

use report::Finding;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Runs every lint pass over the tree rooted at `root`.
///
/// Returns findings sorted in canonical order; empty means the tree is
/// clean. I/O errors (unreadable root) surface as `Err`.
pub fn run_lint(root: &Path) -> std::io::Result<Vec<Finding>> {
    let tree = walk::Tree::discover(root)?;

    let mut sources: BTreeMap<PathBuf, String> = BTreeMap::new();
    for rel in &tree.rust_files {
        sources.insert(rel.clone(), std::fs::read_to_string(root.join(rel))?);
    }
    let mut manifests: BTreeMap<PathBuf, String> = BTreeMap::new();
    for rel in &tree.manifests {
        manifests.insert(rel.clone(), std::fs::read_to_string(root.join(rel))?);
    }

    // Scan every source once; the concurrency pass's lock-order check
    // is cross-file, so the scanned forms are kept for a second walk.
    let scanned: BTreeMap<PathBuf, source::SourceFile> = sources
        .iter()
        .map(|(path, text)| (path.clone(), source::scan(text)))
        .collect();

    let mut findings = Vec::new();
    for (path, file) in &scanned {
        findings.extend(determinism::check(path, file));
        findings.extend(panic_policy::check(path, file));
        findings.extend(observability::check(path, file));
        findings.extend(hermeticity::check_source(path, file));
        findings.extend(concurrency::check_source(path, file));
    }
    findings.extend(concurrency::check_lock_order(&scanned));
    findings.extend(metric_catalog::check(root, &scanned));
    findings.extend(failpoint_catalog::check(root, &scanned));
    for (path, text) in &manifests {
        findings.extend(hermeticity::check(path, text));
    }
    findings.extend(hygiene::check(&manifests, &sources));

    report::sort_findings(&mut findings);
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_runs_over_a_tiny_clean_tree() {
        let root = std::env::temp_dir().join(format!("xtask-lint-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(root.join("src")).unwrap();
        std::fs::write(
            root.join("Cargo.toml"),
            "[package]\nname = \"tiny\"\n\n[dependencies]\n",
        )
        .unwrap();
        std::fs::write(
            root.join("src/lib.rs"),
            "//! Tiny.\npub fn two() -> u32 { 2 }\n#[cfg(test)]\nmod t {\n    #[test]\n    fn works() { assert_eq!(super::two(), 2); }\n}\n",
        )
        .unwrap();
        let findings = run_lint(&root).unwrap();
        assert!(findings.is_empty(), "unexpected: {findings:?}");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn lint_aggregates_across_passes() {
        let root = std::env::temp_dir().join(format!("xtask-lint-bad-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(root.join("src")).unwrap();
        std::fs::write(
            root.join("Cargo.toml"),
            "[package]\nname = \"bad\"\n\n[dependencies]\nrand = \"0.8\"\n",
        )
        .unwrap();
        // Missing //! docs, an unwrap, an entropy RNG, and no tests.
        std::fs::write(
            root.join("src/lib.rs"),
            "pub fn f() { let r = thread_rng(); r.x().unwrap(); }\n",
        )
        .unwrap();
        let findings = run_lint(&root).unwrap();
        let passes: Vec<&str> = findings.iter().map(|f| f.pass.name()).collect();
        for expect in ["determinism", "panic_policy", "hermeticity", "hygiene"] {
            assert!(passes.contains(&expect), "missing {expect}: {findings:?}");
        }
        std::fs::remove_dir_all(&root).unwrap();
    }
}
