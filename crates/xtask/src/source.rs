//! Lexical model of a Rust source file for the lint passes.
//!
//! The passes match *tokens in code*, so this module strips everything
//! that is not code before matching: line comments, (nested) block
//! comments, string literals (including raw strings with `#` guards),
//! and char literals. Stripped spans are replaced with spaces so byte
//! columns survive. The scanner also tracks two pieces of per-line
//! context the passes need:
//!
//! * whether the line sits inside a `#[cfg(test)]` (or `#[test]`) item,
//!   tracked by brace depth — the panic-policy pass skips those lines;
//! * `xtask-allow: <pass>` escape-hatch comments. An allow written on a
//!   code line suppresses findings on that line; an allow on a
//!   comment-only line carries forward to the next code line (so a
//!   justification may span several comment lines).

/// One source line after lexical analysis.
#[derive(Clone, Debug)]
pub struct Line {
    /// The line exactly as written.
    pub raw: String,
    /// The line with comments and literal contents blanked out.
    pub code: String,
    /// True when the line is inside a `#[cfg(test)]` / `#[test]` item.
    pub in_test: bool,
    /// Pass names allowed (suppressed) on this line.
    pub allows: Vec<String>,
}

impl Line {
    /// Whether `pass` is suppressed on this line.
    pub fn allows(&self, pass: &str) -> bool {
        self.allows.iter().any(|a| a == pass)
    }
}

/// A fully scanned source file.
#[derive(Clone, Debug, Default)]
pub struct SourceFile {
    /// Lines in order; index + 1 is the 1-based line number.
    pub lines: Vec<Line>,
}

/// Lexer state that persists across lines.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Mode {
    Code,
    /// Inside `/* */`, which nests in Rust; the payload is the depth.
    BlockComment(u32),
    /// Inside a normal `"` string.
    Str,
    /// Inside a raw string closed by `"` followed by this many `#`s.
    RawStr(u32),
}

/// Scans a file into [`Line`]s.
pub fn scan(text: &str) -> SourceFile {
    let mut lines = Vec::new();
    let mut mode = Mode::Code;
    let mut depth: i64 = 0;
    // Depth at which the current test item's braces close.
    let mut test_until: Option<i64> = None;
    // A `#[cfg(test)]`/`#[test]` attribute was seen; the next `{` opens
    // the test item.
    let mut pending_test = false;
    // Allows from preceding comment-only lines.
    let mut pending_allows: Vec<String> = Vec::new();

    for raw in text.lines() {
        let mut code = String::with_capacity(raw.len());
        let bytes: Vec<char> = raw.chars().collect();
        let mut i = 0;
        // Attribute + item on one line (`#[cfg(test)] mod t { .. }`):
        // arm the flag before the brace scan sees the `{`.
        let trimmed = raw.trim_start();
        if trimmed.starts_with("#[cfg(test)]") || trimmed.starts_with("#[test]") {
            pending_test = true;
        }
        // Findings on the attribute line itself (and until the item
        // closes) count as test code.
        let mut in_test = test_until.is_some() || pending_test;

        while i < bytes.len() {
            let c = bytes[i];
            match mode {
                Mode::BlockComment(d) => {
                    if c == '/' && bytes.get(i + 1) == Some(&'*') {
                        mode = Mode::BlockComment(d + 1);
                        code.push_str("  ");
                        i += 2;
                    } else if c == '*' && bytes.get(i + 1) == Some(&'/') {
                        mode = if d == 1 {
                            Mode::Code
                        } else {
                            Mode::BlockComment(d - 1)
                        };
                        code.push_str("  ");
                        i += 2;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
                Mode::Str => {
                    if c == '\\' {
                        code.push_str("  ");
                        i += 2;
                    } else if c == '"' {
                        mode = Mode::Code;
                        code.push('"');
                        i += 1;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
                Mode::RawStr(hashes) => {
                    if c == '"' {
                        let h = hashes as usize;
                        let closed = (0..h).all(|k| bytes.get(i + 1 + k) == Some(&'#'));
                        if closed {
                            mode = Mode::Code;
                            code.push('"');
                            for _ in 0..h {
                                code.push(' ');
                            }
                            i += 1 + h;
                            continue;
                        }
                    }
                    code.push(' ');
                    i += 1;
                }
                Mode::Code => {
                    if c == '/' && bytes.get(i + 1) == Some(&'/') {
                        // Line comment: drop the rest of the line.
                        break;
                    } else if c == '/' && bytes.get(i + 1) == Some(&'*') {
                        mode = Mode::BlockComment(1);
                        code.push_str("  ");
                        i += 2;
                    } else if c == '"' {
                        mode = Mode::Str;
                        code.push('"');
                        i += 1;
                    } else if c == 'r'
                        && !prev_is_ident(&bytes, i)
                        && raw_string_hashes(&bytes, i + 1).is_some()
                    {
                        if let Some(h) = raw_string_hashes(&bytes, i + 1) {
                            mode = Mode::RawStr(h);
                            code.push('r');
                            for _ in 0..(h as usize + 1) {
                                code.push(' ');
                            }
                            i += h as usize + 2;
                        }
                    } else if c == 'b' && bytes.get(i + 1) == Some(&'"') {
                        mode = Mode::Str;
                        code.push_str("b\"");
                        i += 2;
                    } else if c == '\'' {
                        // Char literal vs. lifetime: a literal is `'x'`
                        // or `'\...'`; a lifetime is `'ident` with no
                        // nearby closing quote.
                        if bytes.get(i + 1) == Some(&'\\') {
                            // Escaped char: skip to the closing quote.
                            let mut j = i + 2;
                            while j < bytes.len() && bytes[j] != '\'' {
                                j += 1;
                            }
                            for _ in i..=j.min(bytes.len() - 1) {
                                code.push(' ');
                            }
                            i = j + 1;
                        } else if bytes.get(i + 2) == Some(&'\'') {
                            code.push_str("   ");
                            i += 3;
                        } else {
                            code.push('\'');
                            i += 1;
                        }
                    } else {
                        if c == '{' {
                            if pending_test {
                                // Keep the outermost test region: a
                                // `#[test]` fn inside a `#[cfg(test)]`
                                // mod must not shrink it.
                                if test_until.is_none() {
                                    test_until = Some(depth);
                                }
                                pending_test = false;
                                in_test = true;
                            }
                            depth += 1;
                        } else if c == '}' {
                            depth -= 1;
                            if let Some(d) = test_until {
                                if depth <= d {
                                    test_until = None;
                                }
                            }
                        }
                        code.push(c);
                        i += 1;
                    }
                }
            }
        }

        if code.contains("#[cfg(test)]") || code.contains("#[test]") {
            pending_test = true;
            in_test = true;
        } else if pending_test && test_until.is_none() && code.contains(';') {
            // `#[cfg(test)] mod tests;` — out-of-line test module; the
            // attribute does not govern the following item.
            pending_test = false;
        }

        // Allow comments live in the raw text (they are comments).
        let own_allows = parse_allows(raw);
        let code_is_blank = code.trim().is_empty();
        let mut allows = own_allows;
        if !code_is_blank {
            allows.append(&mut pending_allows);
        } else {
            // Comment/blank line: carry its allows (and any already
            // pending) forward to the next code line, but let them also
            // apply here (harmless).
            for a in &allows {
                if !pending_allows.contains(a) {
                    pending_allows.push(a.clone());
                }
            }
            allows = pending_allows.clone();
        }

        lines.push(Line {
            raw: raw.to_string(),
            code,
            in_test,
            allows,
        });
    }

    SourceFile { lines }
}

fn prev_is_ident(bytes: &[char], i: usize) -> bool {
    i > 0 && (bytes[i - 1].is_alphanumeric() || bytes[i - 1] == '_')
}

/// If `bytes[start..]` is `#*"` (a raw-string opener after `r`), returns
/// the number of `#`s.
fn raw_string_hashes(bytes: &[char], start: usize) -> Option<u32> {
    let mut h = 0u32;
    let mut j = start;
    while bytes.get(j) == Some(&'#') {
        h += 1;
        j += 1;
    }
    if bytes.get(j) == Some(&'"') {
        Some(h)
    } else {
        None
    }
}

/// Extracts pass names from an `xtask-allow: a, b` marker in a line.
fn parse_allows(raw: &str) -> Vec<String> {
    let Some(pos) = raw.find("xtask-allow:") else {
        return Vec::new();
    };
    let rest = &raw[pos + "xtask-allow:".len()..];
    let mut allows = Vec::new();
    for tok in rest.split([',', ' ', '\t']) {
        if tok.is_empty() {
            continue;
        }
        if tok.chars().all(|c| c.is_ascii_lowercase() || c == '_') {
            allows.push(tok.to_string());
        } else {
            break; // prose after the pass list
        }
    }
    allows
}

/// True when `code[at..]` starts with `needle` at an identifier boundary
/// on both sides.
pub fn ident_match(code: &str, needle: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(rel) = code[from..].find(needle) {
        let at = from + rel;
        let before_ok = at == 0
            || !code[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let end = at + needle.len();
        let after_ok = end >= code.len()
            || !code[end..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_stripped() {
        let f = scan("let x = \"panic!\"; // panic!\nlet y = 1; /* todo! */ let z = 2;\n");
        assert!(!f.lines[0].code.contains("panic!"));
        assert!(f.lines[0].code.contains("let x ="));
        assert!(!f.lines[1].code.contains("todo!"));
        assert!(f.lines[1].code.contains("let z = 2;"));
    }

    #[test]
    fn raw_strings_and_chars_are_stripped() {
        let f = scan("let s = r#\"unwrap()\"#;\nlet c = '\"'; let l: &'static str = \"x\";\n");
        assert!(!f.lines[0].code.contains("unwrap"));
        // The `'` of the char literal must not swallow the rest of the line.
        assert!(f.lines[1].code.contains("let l:"));
        assert!(!f.lines[1].code.contains("x\""));
    }

    #[test]
    fn multiline_block_comments_and_strings() {
        let f = scan("/* a\nunwrap()\n*/ let x = 1;\nlet s = \"a\nunwrap()\nb\"; let t = 2;\n");
        assert!(!f.lines[1].code.contains("unwrap"));
        assert!(f.lines[2].code.contains("let x = 1;"));
        assert!(!f.lines[4].code.contains("unwrap"));
        assert!(f.lines[5].code.contains("let t = 2;"));
    }

    #[test]
    fn cfg_test_blocks_are_tracked() {
        let src = "fn a() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn b() { y.unwrap(); }\n}\nfn c() {}\n";
        let f = scan(src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[1].in_test, "attribute line");
        assert!(f.lines[2].in_test);
        assert!(f.lines[3].in_test);
        assert!(f.lines[4].in_test, "closing brace");
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn test_attribute_covers_following_fn() {
        let src = "#[test]\nfn t() {\n    x.unwrap();\n}\nfn real() {}\n";
        let f = scan(src);
        assert!(f.lines[2].in_test);
        assert!(!f.lines[4].in_test);
    }

    #[test]
    fn nested_test_attr_does_not_end_outer_cfg_test_mod() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        x();\n    }\n    fn helper() { y.unwrap(); }\n}\nfn real() {}\n";
        let f = scan(src);
        assert!(f.lines[6].in_test, "helper after inner #[test] fn");
        assert!(!f.lines[8].in_test);
    }

    #[test]
    fn allow_on_same_line_and_carried_from_comment() {
        let src = "let a = x.unwrap(); // xtask-allow: panic_policy\n// xtask-allow: determinism — seeded upstream\n// more prose\nlet b = thread_rng();\nlet c = 0;\n";
        let f = scan(src);
        assert!(f.lines[0].allows("panic_policy"));
        assert!(f.lines[3].allows("determinism"), "carried across comments");
        assert!(
            !f.lines[4].allows("determinism"),
            "consumed by first code line"
        );
    }

    #[test]
    fn ident_match_respects_boundaries() {
        assert!(ident_match("x.unwrap()", "unwrap").is_some());
        assert!(ident_match("x.unwrap_or(0)", "unwrap()").is_none());
        assert!(ident_match("let unwrapped = 1;", "unwrap").is_none());
        assert!(ident_match("thread_rng()", "thread_rng").is_some());
        assert!(ident_match("my_thread_rng()", "thread_rng").is_none());
    }
}
