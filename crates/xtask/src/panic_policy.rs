//! Panic-policy pass: library code returns errors, it does not abort.
//!
//! Flags `.unwrap()`, `.expect(..)`, `panic!`, `todo!`, and
//! `unimplemented!` in *library* sources (`src/*.rs` excluding `main.rs`
//! and `src/bin/`). Binary roots, integration tests, benches, examples,
//! and `#[cfg(test)]`/`#[test]` items are exempt — a test that unwraps
//! is asserting, a `main` that unwraps is reporting.
//!
//! `assert!`/`debug_assert!` are deliberately permitted: they state
//! invariants, not control flow. Combinators like `.unwrap_or(..)` are
//! never matched (the pattern requires the exact call `unwrap()`).
//!
//! A justified panic — e.g. an infallible-by-construction `expect` — is
//! acknowledged with `// xtask-allow: panic_policy` plus a comment
//! explaining why it cannot fire.
//!
//! `catch_unwind` is the inverse hazard: instead of aborting, it lets a
//! bug masquerade as a handled condition. It is permitted only in the
//! supervised-worker loops ([`CATCH_UNWIND_ALLOWED`]) whose entire job
//! is converting a panic into a typed `internal-error` response and
//! respawning; anywhere else it must be flagged.

use crate::report::{Finding, Pass};
use crate::source::SourceFile;
use crate::walk::is_library_source;
use std::path::Path;

/// `(needle, must_follow, description)` patterns, ident-boundary matched.
const PATTERNS: &[(&str, &str, &str)] = &[
    (
        "unwrap",
        "()",
        "`.unwrap()` panics on None/Err; propagate with `?` or handle the case",
    ),
    (
        "expect",
        "(",
        "`.expect(..)` panics; return a typed error instead",
    ),
    ("panic", "!", "`panic!` in library code; return an error"),
    ("todo", "!", "`todo!` left in library code"),
    (
        "unimplemented",
        "!",
        "`unimplemented!` left in library code",
    ),
    (
        "unreachable",
        "!",
        "`unreachable!` aborts if the invariant ever breaks; return a typed \
         error or justify why the arm cannot be reached",
    ),
    (
        "unwrap_unchecked",
        "(",
        "`.unwrap_unchecked(..)` is undefined behavior when wrong; use a \
         checked form and propagate the error",
    ),
];

/// The only library files (relative to the lint root) permitted to call
/// `catch_unwind`: the supervision points that turn a worker panic into
/// a typed `internal-error` response and respawn the worker. Everywhere
/// else, swallowing an unwind hides the bug — return an error instead.
const CATCH_UNWIND_ALLOWED: &[&str] = &["crates/server/src/worker.rs", "crates/util/src/pool.rs"];

/// Runs the panic-policy pass over one file.
pub fn check(path: &Path, file: &SourceFile) -> Vec<Finding> {
    if !is_library_source(path) {
        return Vec::new();
    }
    let mut findings = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test || line.allows(Pass::PanicPolicy.name()) {
            continue;
        }
        if find_call(&line.code, "catch_unwind", "(").is_some()
            && !CATCH_UNWIND_ALLOWED.iter().any(|p| path == Path::new(p))
        {
            findings.push(Finding {
                pass: Pass::PanicPolicy,
                path: path.to_path_buf(),
                line: idx + 1,
                message: "`catch_unwind` outside a supervised worker loop hides bugs; \
                          propagate the panic or return a typed error"
                    .to_string(),
            });
        }
        for &(needle, follow, msg) in PATTERNS {
            if let Some(at) = find_call(&line.code, needle, follow) {
                // `.unwrap()`/`.expect(` must be method calls; the macro
                // patterns must not be part of a longer path like
                // `core::panic::Location`.
                let is_method = matches!(needle, "unwrap" | "expect" | "unwrap_unchecked");
                if is_method && !preceded_by_dot(&line.code, at) {
                    continue;
                }
                findings.push(Finding {
                    pass: Pass::PanicPolicy,
                    path: path.to_path_buf(),
                    line: idx + 1,
                    message: msg.to_string(),
                });
            }
        }
    }
    findings
}

/// Finds `needle` at an ident boundary, immediately followed by `follow`.
fn find_call(code: &str, needle: &str, follow: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(rel) = code[from..].find(needle) {
        let at = from + rel;
        let before_ok = at == 0
            || !code[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let end = at + needle.len();
        if before_ok && code[end..].starts_with(follow) {
            return Some(at);
        }
        from = at + 1;
    }
    None
}

fn preceded_by_dot(code: &str, at: usize) -> bool {
    code[..at].trim_end().ends_with('.')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::scan;
    use std::path::PathBuf;

    fn run(src: &str) -> Vec<Finding> {
        check(&PathBuf::from("crates/x/src/lib.rs"), &scan(src))
    }

    #[test]
    fn unwrap_and_expect_flagged() {
        let f = run("fn f() { x.unwrap(); }\nfn g() { y.expect(\"msg\"); }\n");
        assert_eq!(f.len(), 2);
        assert_eq!((f[0].line, f[1].line), (1, 2));
    }

    #[test]
    fn combinators_and_lookalikes_pass() {
        let ok = "fn f() { x.unwrap_or(0); y.unwrap_or_else(|| 1); z.unwrap_or_default(); \
                  e.expect_err(\"x\"); assert!(true); debug_assert_eq!(1, 1); }\n";
        assert!(run(ok).is_empty());
    }

    #[test]
    fn macros_flagged() {
        assert_eq!(run("fn f() { panic!(\"boom\"); }\n").len(), 1);
        assert_eq!(run("fn f() { todo!() }\n").len(), 1);
        assert_eq!(run("fn f() { unimplemented!() }\n").len(), 1);
        assert_eq!(
            run("fn f(x: u8) { match x { 0 => {} _ => unreachable!() } }\n").len(),
            1
        );
    }

    #[test]
    fn unchecked_unwrap_flagged_but_suffixed_idents_pass() {
        assert_eq!(run("fn f() { unsafe { x.unwrap_unchecked() } }\n").len(), 1);
        // A local named like the method is not a method call.
        assert!(run("fn f() { let unwrap_unchecked = 1; g(unwrap_unchecked); }\n").is_empty());
        // `unreachable_patterns` (the lint name) is not the macro.
        assert!(run("#[allow(unreachable_patterns)]\nfn f() {}\n").is_empty());
    }

    #[test]
    fn test_code_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); panic!(); }\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn binaries_and_tests_exempt_by_path() {
        let src = "fn main() { run().unwrap(); }\n";
        assert!(check(&PathBuf::from("crates/cli/src/main.rs"), &scan(src)).is_empty());
        assert!(check(&PathBuf::from("tests/e2e.rs"), &scan(src)).is_empty());
        assert!(check(&PathBuf::from("examples/demo.rs"), &scan(src)).is_empty());
    }

    #[test]
    fn allow_with_justification_suppresses() {
        let src = "// Component ids are < nc by construction.\n\
                   // xtask-allow: panic_policy\n\
                   let dag = from_edges(nc, &arcs).expect(\"in range\");\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn catch_unwind_flagged_outside_supervision_points() {
        let src = "fn f() { let _ = std::panic::catch_unwind(|| {}); }\n";
        assert_eq!(run(src).len(), 1);
        for allowed in super::CATCH_UNWIND_ALLOWED {
            assert!(
                check(&PathBuf::from(allowed), &scan(src)).is_empty(),
                "{allowed} is a sanctioned supervision point"
            );
        }
        // A lookalike identifier is not the call.
        assert!(run("fn f() { let catch_unwind_count = 1; g(catch_unwind_count); }\n").is_empty());
    }

    #[test]
    fn mentions_in_comments_and_strings_pass() {
        let src = "/// Panics: never — see panic! docs.\n\
                   fn f() { let s = \"panic!\"; log(s); }\n";
        assert!(run(src).is_empty());
    }
}
