//! Observability pass: library crates log through `soi-obs`, never
//! straight to stdout/stderr.
//!
//! Flags `println!`, `print!`, `eprintln!`, `eprint!`, and `dbg!` in
//! library sources. Direct console writes bypass the level filter and the
//! run report (the event counter misses them), and they interleave with
//! command output. The `cli`, `bench`, and `xtask` crates are exempt —
//! printing *is* their job — as are binary roots, tests, benches, and
//! examples (all excluded by [`is_library_source`] or the test tracking
//! in [`crate::source`]).
//!
//! The remedy is `soi_obs::event!(Level::…, ...)`, which costs one atomic
//! load when disabled, or — for a `Write` sink the caller supplied —
//! `writeln!` to that sink. A justified direct write is acknowledged with
//! `// xtask-allow: observability`.

use crate::report::{Finding, Pass};
use crate::source::SourceFile;
use crate::walk::is_library_source;
use std::path::Path;

/// Crates whose whole purpose is console output.
const EXEMPT_CRATES: &[&str] = &["cli", "bench", "xtask"];

/// Console-writing macros, ident-boundary matched before a `!`.
const MACROS: &[(&str, &str)] = &[
    (
        "println",
        "`println!` in library code; emit through `soi_obs::event!` or write to a caller-supplied sink",
    ),
    (
        "print",
        "`print!` in library code; emit through `soi_obs::event!` or write to a caller-supplied sink",
    ),
    (
        "eprintln",
        "`eprintln!` in library code; emit through `soi_obs::event!` so the level filter applies",
    ),
    (
        "eprint",
        "`eprint!` in library code; emit through `soi_obs::event!` so the level filter applies",
    ),
    ("dbg", "`dbg!` left in library code; remove it or emit a `soi_obs::event!` at debug level"),
];

/// Runs the observability pass over one file.
pub fn check(path: &Path, file: &SourceFile) -> Vec<Finding> {
    if !is_library_source(path) || in_exempt_crate(path) {
        return Vec::new();
    }
    let mut findings = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test || line.allows(Pass::Observability.name()) {
            continue;
        }
        for &(needle, msg) in MACROS {
            if has_macro_call(&line.code, needle) {
                findings.push(Finding {
                    pass: Pass::Observability,
                    path: path.to_path_buf(),
                    line: idx + 1,
                    message: msg.to_string(),
                });
            }
        }
    }
    findings
}

fn in_exempt_crate(rel: &Path) -> bool {
    rel.components()
        .any(|c| EXEMPT_CRATES.contains(&c.as_os_str().to_string_lossy().as_ref()))
}

/// Finds `needle!` at an ident boundary, so `println!` does not match
/// inside `eprintln!` and `print!` does not match inside `println!`.
fn has_macro_call(code: &str, needle: &str) -> bool {
    let mut from = 0;
    while let Some(rel) = code[from..].find(needle) {
        let at = from + rel;
        let before_ok = at == 0
            || !code[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let end = at + needle.len();
        if before_ok && code[end..].starts_with('!') {
            return true;
        }
        from = at + 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::scan;
    use std::path::PathBuf;

    fn run(src: &str) -> Vec<Finding> {
        check(&PathBuf::from("crates/x/src/lib.rs"), &scan(src))
    }

    #[test]
    fn console_macros_flagged() {
        let f = run(
            "fn a() { println!(\"x\"); }\nfn b() { eprintln!(\"y\"); }\n\
             fn c() { print!(\"z\"); }\nfn d() { eprint!(\"w\"); }\nfn e() { dbg!(1); }\n",
        );
        assert_eq!(f.len(), 5);
        assert_eq!(f[0].line, 1);
        assert!(f[1].message.contains("eprintln"));
    }

    #[test]
    fn each_macro_matches_itself_only() {
        // One eprintln must be exactly one finding, not also println/print.
        let f = run("fn a() { eprintln!(\"x\"); }\n");
        assert_eq!(f.len(), 1, "{f:?}");
        let f = run("fn a() { println!(\"x\"); }\n");
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn writeln_and_format_pass() {
        let ok = "fn f(w: &mut impl std::io::Write) { writeln!(w, \"x\").ok(); \
                  let s = format!(\"{}\", 1); log(&s); }\n";
        assert!(run(ok).is_empty());
    }

    #[test]
    fn test_code_and_comments_exempt() {
        let src = "/// println! is forbidden here.\n\
                   #[cfg(test)]\nmod tests {\n fn t() { println!(\"dbg\"); }\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn cli_bench_xtask_exempt_by_path() {
        let src = "fn f() { println!(\"progress\"); }\n";
        for p in [
            "crates/cli/src/commands.rs",
            "crates/bench/src/microbench.rs",
            "crates/xtask/src/report.rs",
        ] {
            assert!(check(&PathBuf::from(p), &scan(src)).is_empty(), "{p}");
        }
        assert_eq!(
            check(&PathBuf::from("crates/graph/src/io.rs"), &scan(src)).len(),
            1
        );
    }

    #[test]
    fn binaries_exempt_by_path() {
        let src = "fn main() { println!(\"out\"); }\n";
        assert!(check(&PathBuf::from("crates/x/src/main.rs"), &scan(src)).is_empty());
        assert!(check(&PathBuf::from("crates/x/src/bin/tool.rs"), &scan(src)).is_empty());
    }

    #[test]
    fn allow_with_justification_suppresses() {
        let src = "// Fatal-path diagnostic before abort.\n\
                   // xtask-allow: observability\n\
                   fn f() { eprintln!(\"fatal\"); }\n";
        assert!(run(src).is_empty());
    }
}
