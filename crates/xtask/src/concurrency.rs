//! Concurrency pass: mechanical checks over the workspace's lock,
//! atomic, and thread usage, so the parallel-scaling refactors promised
//! in ROADMAP.md can proceed without eyeball-only review.
//!
//! Four checks share one source-level model:
//!
//! 1. **Lock order** ([`check_lock_order`], workspace-wide): tracks
//!    `let`-bound `.lock()` guards per file by brace depth and records a
//!    directed edge `outer → inner` whenever a lock is acquired while
//!    another guard is live. Any pair of lock names ever acquired in
//!    *both* orders anywhere in the tree is a deadlock candidate and is
//!    flagged once, naming both sites.
//! 2. **Guard held across a blocking call**: a live `MutexGuard` on a
//!    line that parks the thread — channel `recv`, socket
//!    `accept`/`connect`, buffered `read_line`, `thread::scope`/`join`,
//!    or a failpoint site (failpoints may sleep or yield under
//!    `SOI_SCHEDULE`). `Condvar::wait` is deliberately *not* a blocking
//!    marker: it releases the guard while parked.
//! 3. **Atomic-ordering audit**: every `Ordering::*` literal in library
//!    code must either match a whitelisted idiom (monotonic-counter
//!    read-modify-writes may be `Relaxed`) or carry a `// ordering:`
//!    justification comment — on the same line, or on the comment
//!    line(s) immediately above, like `xtask-allow`. Findings name the
//!    atomic's declaration when it is visible in the same file.
//! 4. **Scoped-spawn discipline**: raw `thread::spawn` (and
//!    `thread::Builder`) is confined to `crates/util/src/pool.rs` and
//!    `crates/server/` — everywhere else, fan-out goes through
//!    `soi_util::pool`'s scoped helpers so panics propagate and joins
//!    are never forgotten. Mirrors the hermeticity pass's path
//!    confinement.
//!
//! **Approximation contract** (same spirit as the determinism pass):
//! the model over-approximates lock identity — a lock is named by the
//! final path segment of the receiver (`self.state.lock()` is `state`),
//! so same-named fields on different types alias — and under-
//! approximates acquisitions hidden behind function calls (a helper
//! that locks internally contributes no edge at its call site) and
//! guards returned from helpers (`let g = lock_helper();` is not
//! tracked). Temporaries (`m.lock().unwrap().push(x)`) die at the end
//! of the statement, so they contribute edges but never a live guard.
//! The runtime schedule-stress harness (`soi_util::schedule`) and the
//! sanitizer CI jobs back these static checks up.

use crate::report::{Finding, Pass};
use crate::source::{ident_match, SourceFile};
use crate::walk::is_library_source;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// The only places permitted to call raw `thread::spawn`: the scoped
/// fan-out helper and the serving crate (whose supervised workers and
/// connection threads own their join/respawn story).
const SPAWN_ALLOWED: &[&str] = &["crates/util/src/pool.rs", "crates/server"];

/// Atomic read-modify-write methods that make `Relaxed` a whitelisted
/// idiom on the same line: counters whose value is only read for
/// reporting (or after a join) need atomicity, not ordering.
const RELAXED_RMW_OK: &[&str] = &["fetch_add", "fetch_sub", "fetch_max", "fetch_min"];

/// Atomic methods that take an `Ordering` argument; used to locate the
/// receiver so a finding can name the atomic.
const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Atomic type names recognized in declarations (`name: AtomicU64`).
const ATOMIC_TYPES: &[&str] = &[
    "AtomicBool",
    "AtomicUsize",
    "AtomicIsize",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
];

/// The memory-ordering variants audited. Matching `Ordering::<variant>`
/// (not bare variants) keeps `std::cmp::Ordering::{Less, Equal,
/// Greater}` — common in the algorithm crates — out of scope.
const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// A nested lock acquisition: `inner` was taken while a guard of
/// `outer` was live, at `path:line`.
#[derive(Clone, Debug)]
struct LockEdge {
    outer: String,
    inner: String,
    path: PathBuf,
    line: usize,
}

/// A live `let`-bound guard inside the per-file walk.
#[derive(Clone, Debug)]
struct Guard {
    /// Binding name, so `drop(name)` can kill it.
    var: String,
    /// Lock name: last path segment of the `.lock()` receiver.
    lock: String,
    /// 1-based line where the guard was bound.
    line: usize,
    /// Brace depth the binding lives at; the guard dies when the walk
    /// dips below it.
    depth: i64,
}

/// Per-file checks 2–4. Check 1 needs the whole tree; see
/// [`check_lock_order`].
pub fn check_source(path: &Path, file: &SourceFile) -> Vec<Finding> {
    let mut findings = guard_blocking(path, file);
    findings.extend(ordering_audit(path, file));
    findings.extend(spawn_discipline(path, file));
    findings
}

/// Check 1: flags every pair of locks acquired in both orders anywhere
/// in the workspace (one finding per unordered pair, anchored at the
/// later of the two first-occurrence sites).
pub fn check_lock_order(files: &BTreeMap<PathBuf, SourceFile>) -> Vec<Finding> {
    // First occurrence of each directed edge wins; BTreeMap iteration
    // keeps the scan deterministic.
    let mut edges: BTreeMap<(String, String), (PathBuf, usize)> = BTreeMap::new();
    for (path, file) in files {
        for e in lock_edges(path, file) {
            edges.entry((e.outer, e.inner)).or_insert((e.path, e.line));
        }
    }
    let mut findings = Vec::new();
    for ((a, b), ab_site) in &edges {
        if a >= b {
            continue; // visit each unordered pair once, from (a, b) with a < b
        }
        if let Some(ba_site) = edges.get(&(b.clone(), a.clone())) {
            // Anchor at the later site so the finding points at the
            // acquisition that completed the cycle in a sorted report.
            let (anchor, other) = if ab_site >= ba_site {
                (ab_site, ba_site)
            } else {
                (ba_site, ab_site)
            };
            findings.push(Finding {
                pass: Pass::Concurrency,
                path: anchor.0.clone(),
                line: anchor.1,
                message: format!(
                    "locks `{a}` and `{b}` are acquired in both orders (other order at \
                     {}:{}); nested acquisition must follow one global order",
                    other.0.display(),
                    other.1
                ),
            });
        }
    }
    findings
}

/// Walks one file and returns every nested-acquisition edge.
fn lock_edges(path: &Path, file: &SourceFile) -> Vec<LockEdge> {
    let mut edges = Vec::new();
    walk_guards(file, |event| {
        if let GuardEvent::Acquire {
            live,
            lock,
            line,
            allowed,
            ..
        } = event
        {
            if allowed {
                return;
            }
            for g in live {
                if g.lock != lock {
                    edges.push(LockEdge {
                        outer: g.lock.clone(),
                        inner: lock.to_string(),
                        path: path.to_path_buf(),
                        line,
                    });
                }
            }
        }
    });
    edges
}

/// Check 2: a live guard across a blocking call, in library code.
fn guard_blocking(path: &Path, file: &SourceFile) -> Vec<Finding> {
    if !is_library_source(path) {
        return Vec::new();
    }
    let mut findings = Vec::new();
    walk_guards(file, |event| {
        if let GuardEvent::Line {
            idx,
            live,
            in_test,
            allowed,
        } = event
        {
            if in_test || allowed || live.is_empty() {
                return;
            }
            if let Some(marker) = blocking_marker(&file.lines[idx].code) {
                let g = &live[0];
                findings.push(Finding {
                    pass: Pass::Concurrency,
                    path: path.to_path_buf(),
                    line: idx + 1,
                    message: format!(
                        "a `MutexGuard` of `{}` (held since line {}) is live across \
                         {marker}; drop the guard before blocking",
                        g.lock, g.line
                    ),
                });
            }
        }
    });
    findings
}

/// Check 3: unjustified memory-ordering literals in library code.
fn ordering_audit(path: &Path, file: &SourceFile) -> Vec<Finding> {
    if !is_library_source(path) {
        return Vec::new();
    }
    let decls = atomic_decls(file);
    let mut findings = Vec::new();
    // `// ordering:` on comment-only lines carries forward to the next
    // code line, mirroring `xtask-allow` placement.
    let mut pending_justification = false;
    for (idx, line) in file.lines.iter().enumerate() {
        let has_marker = line.raw.contains("ordering:");
        if line.code.trim().is_empty() {
            if has_marker {
                pending_justification = true;
            }
            continue;
        }
        let justified = has_marker || pending_justification;
        pending_justification = false;
        if line.in_test || line.allows(Pass::Concurrency.name()) || justified {
            continue;
        }
        let offending: Vec<&str> = ORDERINGS
            .iter()
            .filter(|v| line.code.contains(&format!("Ordering::{v}")))
            .filter(|v| {
                !(**v == "Relaxed"
                    && RELAXED_RMW_OK
                        .iter()
                        .any(|m| ident_match(&line.code, m).is_some()))
            })
            .copied()
            .collect();
        let Some(first) = offending.first() else {
            continue;
        };
        let atom = atomic_receiver(&line.code).map(|name| {
            let decl = decls.get(&name).copied();
            (name, decl)
        });
        let target = match &atom {
            Some((name, Some(decl_line))) => {
                format!(" on atomic `{name}` (declared at line {decl_line})")
            }
            Some((name, None)) => format!(" on atomic `{name}`"),
            None => String::new(),
        };
        findings.push(Finding {
            pass: Pass::Concurrency,
            path: path.to_path_buf(),
            line: idx + 1,
            message: format!(
                "`Ordering::{first}`{target} lacks a `// ordering:` justification; \
                 monotonic-counter RMW may be Relaxed, published-then-read data needs \
                 Acquire/Release — annotate the reasoning"
            ),
        });
    }
    findings
}

/// Check 4: raw `thread::spawn` / `thread::Builder` outside the
/// sanctioned prefixes.
fn spawn_discipline(path: &Path, file: &SourceFile) -> Vec<Finding> {
    if SPAWN_ALLOWED.iter().any(|p| path.starts_with(p)) {
        return Vec::new();
    }
    let mut findings = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        if line.allows(Pass::Concurrency.name()) {
            continue;
        }
        let hit = if line.code.contains("thread::spawn") {
            Some("thread::spawn")
        } else if line.code.contains("thread::Builder") {
            Some("thread::Builder")
        } else {
            None
        };
        if let Some(what) = hit {
            findings.push(Finding {
                pass: Pass::Concurrency,
                path: path.to_path_buf(),
                line: idx + 1,
                message: format!(
                    "raw `{what}` outside `crates/util/src/pool.rs` and `crates/server/`; \
                     use `soi_util::pool`'s scoped helpers so panics propagate and \
                     threads are always joined"
                ),
            });
        }
    }
    findings
}

/// Events emitted by the guard walker, in per-line order: one
/// `Acquire` per `.lock(` occurrence, then one `Line` summarizing the
/// guards live on that line.
enum GuardEvent<'a> {
    Acquire {
        /// Guards live at the moment of acquisition.
        live: &'a [Guard],
        /// Name of the lock being acquired.
        lock: &'a str,
        /// 1-based line of the acquisition.
        line: usize,
        /// The line carries `xtask-allow: concurrency`.
        allowed: bool,
    },
    Line {
        /// 0-based line index.
        idx: usize,
        /// Guards live while this line executes.
        live: &'a [Guard],
        in_test: bool,
        allowed: bool,
    },
}

/// Tracks `let`-bound `.lock()` guards through a file by brace depth
/// and reports acquisitions and per-line liveness to `visit`.
fn walk_guards(file: &SourceFile, mut visit: impl FnMut(GuardEvent<'_>)) {
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth: i64 = 0;
    for (idx, line) in file.lines.iter().enumerate() {
        let code = &line.code;
        let allowed = line.allows(Pass::Concurrency.name());
        let (min_depth, exit_depth) = brace_geometry(code, depth);

        // Acquisitions: every `.lock(` occurrence, in order.
        let mut from = 0;
        while let Some(rel) = code[from..].find(".lock(") {
            let at = from + rel;
            let lock = ident_before(code, at).unwrap_or_else(|| "<expr>".to_string());
            visit(GuardEvent::Acquire {
                live: &guards,
                lock: &lock,
                line: idx + 1,
                allowed,
            });
            if let Some(var) = let_binding(code, at) {
                guards.retain(|g| g.var != var); // rebinding drops the old guard
                                                 // A binding whose enclosing block closes on the same
                                                 // line (`{ let g = m.lock(); }`) is already dead; an
                                                 // open brace after the binding (`if let Ok(g) = .. {`)
                                                 // scopes the guard to that block.
                let (_, depth_at_bind) = brace_geometry(&code[..at], depth);
                if exit_depth >= depth_at_bind {
                    guards.push(Guard {
                        var,
                        lock,
                        line: idx + 1,
                        depth: exit_depth,
                    });
                }
            }
            from = at + 1;
        }

        visit(GuardEvent::Line {
            idx,
            live: &guards,
            in_test: line.in_test,
            allowed,
        });

        // Deaths: explicit `drop(var)`, then scope exit. A guard bound
        // on this very line is exempt from the depth rule — braces
        // *before* its binding (e.g. `if let .. {`) must not kill it.
        guards.retain(|g| !code.contains(&format!("drop({})", g.var)));
        guards.retain(|g| g.line == idx + 1 || min_depth >= g.depth);
        depth = exit_depth;
    }
}

/// `(min depth reached, exit depth)` of a line's code given its entry
/// depth. Comments and string contents are already blanked, so brace
/// counting is safe.
fn brace_geometry(code: &str, entry: i64) -> (i64, i64) {
    let mut d = entry;
    let mut min = entry;
    for c in code.chars() {
        match c {
            '{' => d += 1,
            '}' => {
                d -= 1;
                min = min.min(d);
            }
            _ => {}
        }
    }
    (min, d)
}

/// The identifier immediately before byte `at` (e.g. the receiver
/// segment before `.lock(`).
fn ident_before(code: &str, at: usize) -> Option<String> {
    let head = &code[..at];
    let start = head
        .rfind(|c: char| !(c.is_alphanumeric() || c == '_'))
        .map_or(0, |p| p + c_len(head, p));
    if start >= head.len() {
        return None;
    }
    Some(head[start..].to_string())
}

fn c_len(s: &str, at: usize) -> usize {
    s[at..].chars().next().map_or(1, char::len_utf8)
}

/// If the `.lock(` at `at` sits on the right-hand side of a `let`
/// binding on the same line, returns the bound variable (the last
/// identifier in the pattern, so `let Ok(mut g) = ..` yields `g`).
/// Returns `None` for `_` (immediately dropped) and for temporaries.
fn let_binding(code: &str, at: usize) -> Option<String> {
    let let_pos = ident_match(&code[..at], "let")?;
    let seg = &code[let_pos + 3..at];
    let eq = seg.find('=')?;
    let mut var: Option<&str> = None;
    for tok in seg[..eq].split(|c: char| !(c.is_alphanumeric() || c == '_')) {
        if tok.is_empty() || tok == "mut" || tok == "ref" {
            continue;
        }
        var = Some(tok);
    }
    var.filter(|v| *v != "_").map(str::to_string)
}

/// A call that parks the thread while any held guard stays held.
/// `Condvar::wait` is excluded: it releases the guard while parked.
fn blocking_marker(code: &str) -> Option<&'static str> {
    if code.contains("thread::scope") {
        return Some("`thread::scope` (blocks until every spawned thread joins)");
    }
    if code.contains("TcpStream::connect") {
        return Some("`TcpStream::connect`");
    }
    if code.contains("failpoint!(") || code.contains("failpoint_crash!(") {
        return Some("a failpoint site (may sleep or yield under `SOI_SCHEDULE`)");
    }
    const METHODS: &[(&str, &str, &str)] = &[
        ("recv", "(", "`.recv()`"),
        ("recv_timeout", "(", "`.recv_timeout()`"),
        ("accept", "(", "`.accept()`"),
        ("read_line", "(", "`.read_line()`"),
        ("read_until", "(", "`.read_until()`"),
        ("join", "()", "`.join()`"),
    ];
    for &(name, follow, label) in METHODS {
        if method_call(code, name, follow) {
            return Some(label);
        }
    }
    None
}

/// True when `code` contains `.name` immediately followed by `follow`
/// at an identifier boundary (a method call, not a path or local).
fn method_call(code: &str, name: &str, follow: &str) -> bool {
    let mut from = 0;
    while let Some(rel) = code[from..].find(name) {
        let at = from + rel;
        let before_ok = code[..at].trim_end().ends_with('.');
        let end = at + name.len();
        if before_ok && code[end..].starts_with(follow) {
            return true;
        }
        from = at + 1;
    }
    false
}

/// Declared atomics in a file: `name: AtomicX` (struct fields and
/// statics alike) mapped to the 1-based declaration line.
fn atomic_decls(file: &SourceFile) -> BTreeMap<String, usize> {
    let mut decls = BTreeMap::new();
    for (idx, line) in file.lines.iter().enumerate() {
        for ty in ATOMIC_TYPES {
            let Some(at) = ident_match(&line.code, ty) else {
                continue;
            };
            let head = line.code[..at].trim_end();
            let Some(name_end) = head.strip_suffix(':') else {
                continue;
            };
            if let Some(name) = ident_before(name_end, name_end.len()) {
                decls.entry(name).or_insert(idx + 1);
            }
        }
    }
    decls
}

/// The receiver of the first atomic method call on a line
/// (`self.in_flight.fetch_add(..)` yields `in_flight`).
fn atomic_receiver(code: &str) -> Option<String> {
    for m in ATOMIC_METHODS {
        let mut from = 0;
        while let Some(rel) = code[from..].find(m) {
            let at = from + rel;
            let end = at + m.len();
            let head = code[..at].trim_end();
            if head.ends_with('.') && code[end..].starts_with('(') {
                // Tuple-struct receivers (`self.0.load(..)`) have no
                // usable name; fall back to the generic message.
                return ident_before(head, head.len() - 1)
                    .filter(|name| !name.chars().all(|c| c.is_ascii_digit()));
            }
            from = at + 1;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::scan;
    use std::path::PathBuf;

    fn lib(src: &str) -> Vec<Finding> {
        check_source(&PathBuf::from("crates/x/src/lib.rs"), &scan(src))
    }

    fn order(files: &[(&str, &str)]) -> Vec<Finding> {
        let map: BTreeMap<PathBuf, SourceFile> = files
            .iter()
            .map(|(p, s)| (PathBuf::from(p), scan(s)))
            .collect();
        check_lock_order(&map)
    }

    #[test]
    fn both_order_lock_pair_flagged_once_across_files() {
        let f = order(&[
            (
                "crates/a/src/lib.rs",
                "fn f(x: &S) {\n    let a = x.alpha.lock().unwrap();\n    let b = x.beta.lock().unwrap();\n}\n",
            ),
            (
                "crates/b/src/lib.rs",
                "fn g(x: &S) {\n    let b = x.beta.lock().unwrap();\n    let a = x.alpha.lock().unwrap();\n}\n",
            ),
        ]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("`alpha`") && f[0].message.contains("`beta`"));
        assert!(
            f[0].message.contains("crates/a/src/lib.rs:3"),
            "{}",
            f[0].message
        );
        assert_eq!(
            (f[0].path.clone(), f[0].line),
            (PathBuf::from("crates/b/src/lib.rs"), 3)
        );
    }

    #[test]
    fn consistent_nesting_and_disjoint_scopes_pass() {
        let consistent = "fn f(x: &S) {\n    let a = x.alpha.lock().unwrap();\n    let b = x.beta.lock().unwrap();\n}\nfn g(x: &S) {\n    let a = x.alpha.lock().unwrap();\n    let b = x.beta.lock().unwrap();\n}\n";
        assert!(order(&[("crates/a/src/lib.rs", consistent)]).is_empty());
        // Scopes close between acquisitions: no nesting, no edge.
        let disjoint = "fn f(x: &S) {\n    { let a = x.alpha.lock().unwrap(); }\n    { let b = x.beta.lock().unwrap(); }\n}\nfn g(x: &S) {\n    { let b = x.beta.lock().unwrap(); }\n    { let a = x.alpha.lock().unwrap(); }\n}\n";
        assert!(order(&[("crates/a/src/lib.rs", disjoint)]).is_empty());
    }

    #[test]
    fn explicit_drop_ends_the_guard() {
        let src = "fn f(x: &S) {\n    let a = x.alpha.lock().unwrap();\n    drop(a);\n    let b = x.beta.lock().unwrap();\n}\nfn g(x: &S) {\n    let b = x.beta.lock().unwrap();\n    drop(b);\n    let a = x.alpha.lock().unwrap();\n}\n";
        assert!(order(&[("crates/a/src/lib.rs", src)]).is_empty());
    }

    #[test]
    fn temporary_lock_contributes_an_edge_but_no_live_guard() {
        // `beta` is locked as a temporary inside `alpha`'s guard (edge),
        // and the reverse order appears via temporaries elsewhere.
        let f = order(&[(
            "crates/a/src/lib.rs",
            "fn f(x: &S) {\n    let a = x.alpha.lock().unwrap();\n    x.beta.lock().unwrap().push(1);\n}\nfn g(x: &S) {\n    let b = x.beta.lock().unwrap();\n    x.alpha.lock().unwrap().push(1);\n}\n",
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
        // But a temporary never stays live: no guard across later lines.
        let ok = "fn f(x: &S) {\n    x.alpha.lock().unwrap().push(1);\n    let b = x.beta.lock().unwrap();\n}\nfn g(x: &S) {\n    let b = x.beta.lock().unwrap();\n}\n";
        assert!(order(&[("crates/a/src/lib.rs", ok)]).is_empty());
    }

    #[test]
    fn guard_across_recv_flagged() {
        let f = lib("fn f(x: &S) {\n    let g = x.state.lock().unwrap();\n    let msg = x.rx.recv().unwrap();\n}\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 3);
        assert!(f[0].message.contains("`state`"), "{}", f[0].message);
        assert!(f[0].message.contains("held since line 2"));
    }

    #[test]
    fn condvar_wait_is_not_blocking() {
        let src = "fn f(x: &S) {\n    let mut g = x.state.lock().unwrap();\n    while g.empty() {\n        g = x.cond.wait(g).unwrap();\n    }\n}\n";
        assert!(lib(src).is_empty());
    }

    #[test]
    fn guard_dropped_or_scoped_out_before_blocking_passes() {
        let dropped = "fn f(x: &S) {\n    let g = x.state.lock().unwrap();\n    drop(g);\n    let m = x.rx.recv().unwrap();\n}\n";
        assert!(lib(dropped).is_empty());
        let scoped = "fn f(x: &S) {\n    let batch = {\n        let mut g = x.state.lock().unwrap();\n        g.drain()\n    };\n    for h in batch { h.join().ok(); }\n}\n";
        assert!(lib(scoped).is_empty());
    }

    #[test]
    fn guard_across_scope_join_and_failpoint_flagged() {
        assert_eq!(
            lib("fn f(x: &S) {\n    let g = x.state.lock().unwrap();\n    std::thread::scope(|s| {});\n}\n").len(),
            1
        );
        assert_eq!(
            lib("fn f(x: &S) {\n    let g = x.state.lock().unwrap();\n    failpoint!(\"site\");\n}\n").len(),
            1
        );
        // `h.join()` blocks; `path.join("x")` does not.
        assert_eq!(
            lib("fn f(x: &S) {\n    let g = x.state.lock().unwrap();\n    x.handle.join().ok();\n}\n").len(),
            1
        );
        assert!(lib("fn f(x: &S) {\n    let g = x.state.lock().unwrap();\n    let p = x.dir.join(\"file\");\n}\n").is_empty());
    }

    #[test]
    fn blocking_checks_skip_tests_and_allows() {
        let test_src = "#[cfg(test)]\nmod tests {\n    fn t(x: &S) {\n        let g = x.state.lock().unwrap();\n        let m = x.rx.recv().unwrap();\n    }\n}\n";
        assert!(lib(test_src).is_empty());
        let allowed = "fn f(x: &S) {\n    let g = x.state.lock().unwrap();\n    // shutdown path: single-threaded by then\n    // xtask-allow: concurrency\n    let m = x.rx.recv().unwrap();\n}\n";
        assert!(lib(allowed).is_empty());
    }

    #[test]
    fn unjustified_orderings_flagged_with_declaration() {
        let src = "pub struct S {\n    flag: AtomicBool,\n}\nimpl S {\n    fn f(&self) -> bool {\n        self.flag.load(Ordering::Acquire)\n    }\n}\n";
        let f = lib(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 6);
        assert!(
            f[0].message
                .contains("`Ordering::Acquire` on atomic `flag` (declared at line 2)"),
            "{}",
            f[0].message
        );
    }

    #[test]
    fn relaxed_rmw_counter_is_whitelisted_but_relaxed_load_is_not() {
        assert!(lib("fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n").is_empty());
        assert_eq!(
            lib("fn f(c: &AtomicU64) -> u64 { c.load(Ordering::Relaxed) }\n").len(),
            1
        );
        assert_eq!(
            lib("fn f(c: &AtomicU64) { c.store(1, Ordering::SeqCst); }\n").len(),
            1
        );
    }

    #[test]
    fn ordering_comment_justifies_same_line_and_carried() {
        let same = "fn f(c: &AtomicU64) -> u64 {\n    c.load(Ordering::Relaxed) // ordering: config value, no data published through it\n}\n";
        assert!(lib(same).is_empty());
        let carried = "fn f(c: &AtomicU64) -> u64 {\n    // ordering: stats counter read only for reporting; no\n    // happens-before edge is needed.\n    c.load(Ordering::Relaxed)\n}\n";
        assert!(lib(carried).is_empty());
        // The justification attaches to the next code line only.
        let stale = "fn f(c: &AtomicU64) -> u64 {\n    // ordering: covers only the line below\n    let x = 1;\n    c.load(Ordering::Relaxed)\n}\n";
        assert_eq!(lib(stale).len(), 1);
    }

    #[test]
    fn cmp_ordering_is_out_of_scope() {
        let src = "fn f(a: u32, b: u32) -> std::cmp::Ordering {\n    match a.cmp(&b) {\n        Ordering::Less => Ordering::Less,\n        o => o,\n    }\n}\n";
        assert!(lib(src).is_empty());
    }

    #[test]
    fn spawn_confined_to_pool_and_server() {
        let src = "fn f() {\n    std::thread::spawn(|| {});\n}\n";
        let f = lib(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("thread::spawn"));
        for ok in ["crates/util/src/pool.rs", "crates/server/src/worker.rs"] {
            assert!(
                check_source(&PathBuf::from(ok), &scan(src)).is_empty(),
                "{ok} is a sanctioned spawn site"
            );
        }
        // Scoped spawns are the sanctioned idiom everywhere.
        assert!(lib("fn f() {\n    std::thread::scope(|s| { s.spawn(|| {}); });\n}\n").is_empty());
    }

    #[test]
    fn mentions_in_comments_and_strings_pass() {
        let src = "//! Discusses thread::spawn and Ordering::SeqCst in docs.\nfn f() -> &'static str {\n    \"thread::spawn Ordering::Relaxed .lock() .recv()\"\n}\n";
        assert!(lib(src).is_empty());
    }
}
