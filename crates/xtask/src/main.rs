//! Command-line entry point for workspace tasks: `cargo xtask lint`.
//!
//! `lint [--root <dir>]` runs the six static-analysis passes (see the
//! crate docs and `docs/STATIC_ANALYSIS.md`) and exits nonzero when any
//! finding is reported. `--root` defaults to the current directory,
//! which under the `cargo xtask` alias is the workspace root; the flag
//! exists so the fixture tests can point the linter at deliberately
//! broken trees.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some(other) => {
            eprintln!("unknown task `{other}`");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
        None => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage: cargo xtask lint [--root <dir>]";

fn lint(args: &[String]) -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("--root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!("{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    match xtask::run_lint(&root) {
        Ok(findings) if findings.is_empty() => {
            eprintln!("xtask lint: clean");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            eprintln!("xtask lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("xtask lint: cannot read `{}`: {e}", root.display());
            ExitCode::from(2)
        }
    }
}
