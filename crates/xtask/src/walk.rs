//! Deterministic workspace file discovery for the lint passes.
//!
//! Walks the lint root recursively, skipping build output (`target/`),
//! VCS metadata, and lint-test fixture trees (`fixtures/` directories
//! contain *deliberately* broken crates). Results are sorted so every
//! run reports findings in the same order regardless of readdir order.

use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", ".cargo", "fixtures"];

/// All files discovered under a lint root, pre-classified.
#[derive(Clone, Debug, Default)]
pub struct Tree {
    /// Every `.rs` file, sorted, relative to the root.
    pub rust_files: Vec<PathBuf>,
    /// Every `Cargo.toml`, sorted, relative to the root.
    pub manifests: Vec<PathBuf>,
}

impl Tree {
    /// Walks `root` and classifies its files.
    pub fn discover(root: &Path) -> std::io::Result<Tree> {
        let mut tree = Tree::default();
        walk(root, Path::new(""), &mut tree)?;
        tree.rust_files.sort();
        tree.manifests.sort();
        Ok(tree)
    }

    /// Directories (relative to the root) that contain a `Cargo.toml`,
    /// i.e. package roots. Sorted; includes the workspace root package
    /// when the root manifest declares one.
    pub fn package_dirs(&self) -> Vec<PathBuf> {
        self.manifests
            .iter()
            .map(|m| m.parent().unwrap_or(Path::new("")).to_path_buf())
            .collect()
    }
}

fn walk(root: &Path, rel: &Path, tree: &mut Tree) -> std::io::Result<()> {
    let dir = root.join(rel);
    let mut entries: Vec<_> = std::fs::read_dir(&dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.file_name())
        .collect();
    entries.sort();
    for name in entries {
        let rel_child = rel.join(&name);
        let abs = root.join(&rel_child);
        let name = name.to_string_lossy().into_owned();
        if abs.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                continue;
            }
            walk(root, &rel_child, tree)?;
        } else if name == "Cargo.toml" {
            tree.manifests.push(rel_child);
        } else if name.ends_with(".rs") {
            tree.rust_files.push(rel_child);
        }
    }
    Ok(())
}

/// True for library sources: files under a `src/` directory that are not
/// binary roots (`main.rs`, anything under `src/bin/`). The panic-policy
/// pass only applies to these.
pub fn is_library_source(rel: &Path) -> bool {
    let comps: Vec<String> = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    let Some(src_at) = comps.iter().position(|c| c == "src") else {
        return false;
    };
    let rest = &comps[src_at + 1..];
    if rest.is_empty() || rest[0] == "bin" {
        return false;
    }
    rest.last().map(String::as_str) != Some("main.rs")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_source_classification() {
        assert!(is_library_source(Path::new("crates/graph/src/csr.rs")));
        assert!(is_library_source(Path::new("src/lib.rs")));
        assert!(is_library_source(Path::new("crates/x/src/passes/a.rs")));
        assert!(!is_library_source(Path::new("crates/cli/src/main.rs")));
        assert!(!is_library_source(Path::new(
            "crates/bench/src/bin/run_all.rs"
        )));
        assert!(!is_library_source(Path::new("tests/end_to_end.rs")));
        assert!(!is_library_source(Path::new("examples/quickstart.rs")));
        assert!(!is_library_source(Path::new("crates/x/benches/b.rs")));
    }

    #[test]
    fn discover_skips_fixture_and_target_trees() {
        let root = std::env::temp_dir().join(format!("xtask-walk-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        for d in ["src", "target/debug", "tests/fixtures/bad/src"] {
            std::fs::create_dir_all(root.join(d)).unwrap();
        }
        std::fs::write(root.join("Cargo.toml"), "[package]\n").unwrap();
        std::fs::write(root.join("src/lib.rs"), "//! x\n").unwrap();
        std::fs::write(root.join("target/debug/gen.rs"), "").unwrap();
        std::fs::write(root.join("tests/fixtures/bad/src/lib.rs"), "").unwrap();
        std::fs::write(root.join("tests/fixtures/bad/Cargo.toml"), "").unwrap();

        let tree = Tree::discover(&root).unwrap();
        assert_eq!(tree.rust_files, vec![PathBuf::from("src/lib.rs")]);
        assert_eq!(tree.manifests, vec![PathBuf::from("Cargo.toml")]);
        std::fs::remove_dir_all(&root).unwrap();
    }
}
