//! Failpoint-catalog pass: every fault-injection site the code plants
//! is documented, and every documented site is still planted.
//!
//! `docs/ROBUSTNESS.md` carries the failpoint catalog between
//! `<!-- failpoint-catalog:begin -->` and `<!-- failpoint-catalog:end -->`
//! markers: markdown table rows whose first backtick span is the site
//! name. This pass extracts every site name planted in source — the
//! first string literal of `failpoint!("…")`, `failpoint_crash!("…")`,
//! and `trigger("…")` calls — and checks both directions:
//!
//! * a planted site missing from the catalog flags the plant site (the
//!   doc rotted behind the code);
//! * a cataloged site no longer planted anywhere flags the catalog row
//!   (the code rotted behind the doc).
//!
//! Names are matched in the **raw** line text because [`crate::source`]
//! blanks string-literal contents in the lexed form; test lines are
//! skipped (unit tests trigger scratch sites that are not part of the
//! `SOI_FAILPOINTS` surface). Dynamically built names cannot be
//! extracted and are exempt by construction. Suppress a deliberate
//! undocumented site with `// xtask-allow: failpoint_catalog`.
//!
//! Fixture trees have no `docs/ROBUSTNESS.md`; a missing doc skips the
//! pass entirely rather than flagging every site in a tree that never
//! promised a catalog.

use crate::report::{Finding, Pass};
use crate::source::SourceFile;
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// Marker opening the catalog region in the doc.
pub const BEGIN_MARKER: &str = "<!-- failpoint-catalog:begin -->";
/// Marker closing the catalog region in the doc.
pub const END_MARKER: &str = "<!-- failpoint-catalog:end -->";
/// The catalog's home, relative to the lint root.
pub const DOC_PATH: &str = "docs/ROBUSTNESS.md";

/// Call forms whose first string literal is a failpoint site name.
const PLANT_CALLS: &[&str] = &["failpoint!(\"", "failpoint_crash!(\"", "trigger(\""];

/// Runs the failpoint-catalog pass over the whole tree. `root` locates
/// the catalog document; `scanned` are the lexed sources.
pub fn check(root: &Path, scanned: &BTreeMap<PathBuf, SourceFile>) -> Vec<Finding> {
    let doc_text = match std::fs::read_to_string(root.join(DOC_PATH)) {
        Ok(text) => text,
        // No doc, no catalog contract (lint-test fixture trees).
        Err(_) => return Vec::new(),
    };
    let mut findings = Vec::new();
    let catalog = match parse_catalog(&doc_text) {
        Some(catalog) => catalog,
        None => {
            findings.push(Finding {
                pass: Pass::FailpointCatalog,
                path: PathBuf::from(DOC_PATH),
                line: 1,
                message: format!(
                    "failpoint catalog markers missing; wrap the site table in \
                     `{BEGIN_MARKER}` / `{END_MARKER}`"
                ),
            });
            return findings;
        }
    };

    let planted = planted_sites(scanned);
    for (name, sites) in &planted {
        if !catalog.contains_key(name) {
            let (path, line) = &sites[0];
            findings.push(Finding {
                pass: Pass::FailpointCatalog,
                path: path.clone(),
                line: *line,
                message: format!(
                    "failpoint `{name}` is planted here but missing from the \
                     {DOC_PATH} catalog; add a row (or `// xtask-allow: failpoint_catalog`)"
                ),
            });
        }
    }
    for (name, line) in &catalog {
        if !planted.contains_key(name) {
            findings.push(Finding {
                pass: Pass::FailpointCatalog,
                path: PathBuf::from(DOC_PATH),
                line: *line,
                message: format!(
                    "cataloged failpoint `{name}` is not planted anywhere in the \
                     tree; delete the row or restore the site"
                ),
            });
        }
    }
    findings
}

/// Extracts the catalog as `site -> 1-based doc line`. `None` when the
/// marker pair is absent or inverted.
fn parse_catalog(doc: &str) -> Option<BTreeMap<String, usize>> {
    let mut catalog = BTreeMap::new();
    let mut inside = false;
    let mut saw_region = false;
    for (idx, line) in doc.lines().enumerate() {
        if line.contains(BEGIN_MARKER) {
            inside = true;
            saw_region = true;
            continue;
        }
        if line.contains(END_MARKER) {
            if !inside {
                return None;
            }
            inside = false;
            continue;
        }
        if !inside {
            continue;
        }
        if let Some(name) = table_row_site(line) {
            catalog.entry(name).or_insert(idx + 1);
        }
    }
    if !saw_region || inside {
        return None;
    }
    Some(catalog)
}

/// The first backtick span of a markdown table row, when it looks like
/// a site name. Header and separator rows have no backtick span.
fn table_row_site(line: &str) -> Option<String> {
    let trimmed = line.trim();
    if !trimmed.starts_with('|') {
        return None;
    }
    let open = trimmed.find('`')?;
    let rest = &trimmed[open + 1..];
    let close = rest.find('`')?;
    let name = &rest[..close];
    let valid = !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || ".-_".contains(c));
    valid.then(|| name.to_string())
}

/// Every site name planted in non-test code, with the plant sites where
/// it appears (sorted by the BTreeMap walk, so the first site is the
/// canonical anchor for findings).
fn planted_sites(
    scanned: &BTreeMap<PathBuf, SourceFile>,
) -> BTreeMap<String, Vec<(PathBuf, usize)>> {
    let mut planted: BTreeMap<String, Vec<(PathBuf, usize)>> = BTreeMap::new();
    for (path, file) in scanned {
        for (idx, line) in file.lines.iter().enumerate() {
            if line.in_test || line.allows(Pass::FailpointCatalog.name()) {
                continue;
            }
            for name in site_names_in(&line.raw) {
                planted
                    .entry(name)
                    .or_default()
                    .push((path.clone(), idx + 1));
            }
        }
    }
    planted
}

/// Failpoint-site literals in one raw source line.
fn site_names_in(raw: &str) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for call in PLANT_CALLS {
        let mut from = 0;
        while let Some(rel) = raw[from..].find(call) {
            let at = from + rel;
            // Ident boundary on the left so `failpoint::trigger` never
            // rides along on a longer identifier ending in `trigger`.
            let boundary = at == 0
                || !raw[..at]
                    .chars()
                    .next_back()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_');
            let start = at + call.len();
            if let Some(close) = raw[start..].find('"') {
                let name = &raw[start..start + close];
                // The charset filter also discards false positives where
                // the call text appears inside a longer string literal
                // (the extracted span then crosses `)`, spaces, …).
                let valid = boundary
                    && !name.is_empty()
                    && name
                        .chars()
                        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || ".-_".contains(c));
                if valid {
                    names.insert(name.to_string());
                }
            }
            from = at + call.len();
        }
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::scan;

    fn doc(rows: &str) -> String {
        format!("# Robustness\n\n{BEGIN_MARKER}\n| site | planted in |\n|---|---|\n{rows}{END_MARKER}\n")
    }

    fn tree(src: &str) -> BTreeMap<PathBuf, SourceFile> {
        [(PathBuf::from("crates/x/src/lib.rs"), scan(src))]
            .into_iter()
            .collect()
    }

    fn check_with(doc_text: &str, src: &str) -> Vec<Finding> {
        let root = std::env::temp_dir().join(format!(
            "xtask-failpoint-catalog-{}-{:p}",
            std::process::id(),
            &doc_text
        ));
        std::fs::create_dir_all(root.join("docs")).unwrap();
        std::fs::write(root.join(DOC_PATH), doc_text).unwrap();
        let findings = check(&root, &tree(src));
        std::fs::remove_dir_all(&root).unwrap();
        findings
    }

    #[test]
    fn documented_sites_pass_both_directions() {
        let findings = check_with(
            &doc("| `io.read` | the reader |\n| `worker.crash` | the worker |\n"),
            "fn f() { soi_util::failpoint!(\"io.read\", ()); }\n\
             fn g() { soi_util::failpoint_crash!(\"worker.crash\"); }\n",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn stale_catalog_row_and_undocumented_site_both_flag() {
        let findings = check_with(
            &doc("| `io.gone` | removed code |\n"),
            "fn f() { soi_util::failpoint::trigger(\"io.fresh\")?; }\n",
        );
        assert_eq!(findings.len(), 2, "{findings:?}");
        let messages: Vec<&str> = findings.iter().map(|f| f.message.as_str()).collect();
        assert!(messages.iter().any(|m| m.contains("`io.fresh`")));
        assert!(messages.iter().any(|m| m.contains("`io.gone`")));
        let doc_finding = findings
            .iter()
            .find(|f| f.path == Path::new(DOC_PATH))
            .unwrap();
        assert_eq!(doc_finding.line, 6, "row line within the doc");
    }

    #[test]
    fn test_lines_and_allows_are_skipped() {
        let src = "// scratch site for a bench harness, intentionally uncataloged\n\
                   // xtask-allow: failpoint_catalog\n\
                   fn g() { soi_util::failpoint!(\"bench.scratch\", ()); }\n\
                   #[cfg(test)]\nmod t {\n    fn h() { soi_util::failpoint::trigger(\"test.only\").unwrap(); }\n}\n";
        let findings = check_with(&doc(""), src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn call_text_inside_a_longer_string_literal_is_not_a_site() {
        // e.g. a lint pass matching on `code.contains("failpoint!(")` —
        // the extracted span crosses `)`/spaces and fails the charset.
        let names =
            site_names_in("let hit = code.contains(\"failpoint!(\") || code.contains(\"x\");");
        assert!(names.is_empty(), "{names:?}");
    }

    #[test]
    fn missing_markers_flag_the_doc_once() {
        let findings = check_with("# Robustness\nno markers here\n", "fn f() {}\n");
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("markers missing"));
        assert_eq!(findings[0].path, PathBuf::from(DOC_PATH));
    }

    #[test]
    fn missing_doc_skips_the_pass() {
        let root =
            std::env::temp_dir().join(format!("xtask-failpoint-nodoc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).unwrap();
        let findings = check(
            &root,
            &tree("fn f() { soi_util::failpoint!(\"io.read\", ()); }\n"),
        );
        assert!(findings.is_empty(), "{findings:?}");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn catalog_rows_parse_names_from_backtick_spans() {
        assert_eq!(
            table_row_site("| `server.response.write` | before the response write |"),
            Some("server.response.write".to_string())
        );
        assert_eq!(table_row_site("|---|---|"), None);
        assert_eq!(table_row_site("| site | planted in |"), None);
        assert_eq!(table_row_site("plain prose `code`"), None);
        assert_eq!(table_row_site("| `Not A Site` |"), None);
    }
}
