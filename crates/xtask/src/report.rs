//! Finding representation and deterministic rendering for `xtask lint`.
//!
//! Every pass reports [`Finding`]s; the driver sorts them by
//! `(path, line, pass)` so output is stable across filesystem iteration
//! order, then renders one `path:line: [pass] message` row per finding —
//! the same shape compilers use, so editors can jump to the location.

use std::fmt;
use std::path::PathBuf;

/// The lint pass that produced a finding. Names double as the tokens
/// accepted by `// xtask-allow: <pass>` comments.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Pass {
    /// Unseeded randomness or unordered-container emission.
    Determinism,
    /// `unwrap`/`expect`/`panic!`/`todo!` in library code.
    PanicPolicy,
    /// External registry dependencies in a Cargo manifest, or network
    /// primitives outside the serving crate.
    Hermeticity,
    /// Missing module docs or missing tests.
    Hygiene,
    /// Direct console writes in library code instead of `soi-obs`.
    Observability,
    /// Lock-order inversions, guards held across blocking calls,
    /// unjustified atomic orderings, or unscoped thread spawns.
    Concurrency,
    /// Registered metrics and the docs/OBSERVABILITY.md catalog drifted
    /// apart (either direction).
    MetricCatalog,
    /// Planted failpoint sites and the docs/ROBUSTNESS.md catalog
    /// drifted apart (either direction).
    FailpointCatalog,
}

impl Pass {
    /// The pass name as written in reports and allow comments.
    pub fn name(self) -> &'static str {
        match self {
            Pass::Determinism => "determinism",
            Pass::PanicPolicy => "panic_policy",
            Pass::Hermeticity => "hermeticity",
            Pass::Hygiene => "hygiene",
            Pass::Observability => "observability",
            Pass::Concurrency => "concurrency",
            Pass::MetricCatalog => "metric_catalog",
            Pass::FailpointCatalog => "failpoint_catalog",
        }
    }

    /// All passes, in report order.
    pub fn all() -> [Pass; 8] {
        [
            Pass::Determinism,
            Pass::PanicPolicy,
            Pass::Hermeticity,
            Pass::Hygiene,
            Pass::Observability,
            Pass::Concurrency,
            Pass::MetricCatalog,
            Pass::FailpointCatalog,
        ]
    }
}

impl fmt::Display for Pass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One lint violation, anchored to a file and 1-based line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Which pass flagged it.
    pub pass: Pass,
    /// Path relative to the lint root.
    pub path: PathBuf,
    /// 1-based line number (1 for whole-file findings).
    pub line: usize,
    /// Human-readable explanation, including the remedy.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.pass,
            self.message
        )
    }
}

/// Sorts findings into the canonical report order.
pub fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (&a.path, a.line, a.pass)
            .cmp(&(&b.path, b.line, b.pass))
            .then_with(|| a.message.cmp(&b.message))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn findings_render_compiler_style() {
        let f = Finding {
            pass: Pass::PanicPolicy,
            path: PathBuf::from("crates/x/src/lib.rs"),
            line: 7,
            message: "forbidden `.unwrap()`".into(),
        };
        assert_eq!(
            f.to_string(),
            "crates/x/src/lib.rs:7: [panic_policy] forbidden `.unwrap()`"
        );
    }

    #[test]
    fn sort_is_by_path_then_line_then_pass() {
        let mk = |p: &str, l: usize, pass: Pass| Finding {
            pass,
            path: PathBuf::from(p),
            line: l,
            message: String::new(),
        };
        let mut v = vec![
            mk("b.rs", 1, Pass::Hygiene),
            mk("a.rs", 9, Pass::Determinism),
            mk("a.rs", 2, Pass::Hygiene),
            mk("a.rs", 2, Pass::Determinism),
        ];
        sort_findings(&mut v);
        let order: Vec<(String, usize, Pass)> = v
            .iter()
            .map(|f| (f.path.display().to_string(), f.line, f.pass))
            .collect();
        assert_eq!(
            order,
            vec![
                ("a.rs".into(), 2, Pass::Determinism),
                ("a.rs".into(), 2, Pass::Hygiene),
                ("a.rs".into(), 9, Pass::Determinism),
                ("b.rs".into(), 1, Pass::Hygiene),
            ]
        );
    }

    #[test]
    fn pass_names_match_allow_tokens() {
        for p in Pass::all() {
            assert!(p.name().chars().all(|c| c.is_ascii_lowercase() || c == '_'));
        }
    }
}
