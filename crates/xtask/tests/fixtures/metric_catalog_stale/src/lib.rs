//! Fixture: the catalog documents a metric the code no longer has.

pub fn work() {
    soi_obs::counter("fixture.documented").add(1);
}

#[cfg(test)]
mod tests {
    #[test]
    fn present() {
        assert!(true);
    }
}
