//! Fixture: a mutex guard held across a blocking channel receive.

use std::sync::mpsc::Receiver;
use std::sync::Mutex;

/// Adds the next received value while (wrongly) holding the lock.
pub fn drain(total: &Mutex<u32>, rx: &Receiver<u32>) -> u32 {
    if let Ok(g) = total.lock() {
        let v = rx.recv().unwrap_or(0);
        return *g + v;
    }
    0
}

#[cfg(test)]
mod tests {
    #[test]
    fn present() {
        assert!(true);
    }
}
