//! Fixture: code metrics and catalog agree; test scratch metrics and
//! allowed lines stay out of the contract.

pub fn work() {
    soi_obs::counter("fixture.documented").add(1);
    soi_obs::wall_hist("fixture.latency").observe_ns(5);
    // Per-run scratch series, intentionally uncataloged.
    // xtask-allow: metric_catalog
    soi_obs::gauge("fixture.scratch").set(1.0);
}

#[cfg(test)]
mod tests {
    #[test]
    fn present() {
        soi_obs::counter("test.fixture.scratch").add(1);
        assert!(true);
    }
}
