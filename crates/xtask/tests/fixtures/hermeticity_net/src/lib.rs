//! Fixture: network primitives outside the serving crate.

use std::net::TcpListener;

pub fn port_hint() -> u16 {
    0
}

#[cfg(test)]
mod tests {
    #[test]
    fn present() {
        assert!(true);
    }
}
