//! Fixture: unordered emission.

use std::collections::HashMap;

pub fn dump(counts: HashMap<u32, u32>) {
    use std::io::Write;
    let mut out = std::io::stdout();
    for (k, v) in counts.iter() {
        writeln!(out, "{k}\t{v}").ok();
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn present() {
        assert!(true);
    }
}
