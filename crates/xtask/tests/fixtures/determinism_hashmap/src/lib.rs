//! Fixture: unordered emission.

use std::collections::HashMap;

pub fn dump(counts: HashMap<u32, u32>) {
    for (k, v) in counts.iter() {
        println!("{k}\t{v}");
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn present() {
        assert!(true);
    }
}
