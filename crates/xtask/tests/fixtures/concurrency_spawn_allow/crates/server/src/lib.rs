//! Fixture: the serving crate owns its worker threads' join story.

/// Spawns a supervised worker thread.
pub fn run() -> std::thread::JoinHandle<()> {
    std::thread::spawn(|| {})
}

#[cfg(test)]
mod tests {
    #[test]
    fn present() {
        assert!(true);
    }
}
