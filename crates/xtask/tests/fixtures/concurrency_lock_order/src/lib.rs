//! Fixture: two locks acquired in both orders (deadlock candidate).

use std::sync::Mutex;

/// Shared pipeline state with two independent locks.
pub struct Pair {
    /// Protects the queue.
    pub queue: Mutex<u32>,
    /// Protects the stats.
    pub stats: Mutex<u32>,
}

/// Takes `queue` then `stats`.
pub fn enqueue(p: &Pair) -> u32 {
    if let Ok(q) = p.queue.lock() {
        if let Ok(s) = p.stats.lock() {
            return *q + *s;
        }
    }
    0
}

/// Takes `stats` then `queue` — the inversion.
pub fn report(p: &Pair) -> u32 {
    if let Ok(s) = p.stats.lock() {
        if let Ok(q) = p.queue.lock() {
            return *s + *q;
        }
    }
    0
}

#[cfg(test)]
mod tests {
    #[test]
    fn present() {
        assert!(true);
    }
}
