//! Fixture: no tests anywhere.

pub fn two() -> u32 {
    2
}
