//! Fixture: panicking library code.

pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn present() {
        assert!(true);
    }
}
