pub fn two() -> u32 {
    2
}

#[cfg(test)]
mod tests {
    #[test]
    fn present() {
        assert!(true);
    }
}
