//! Fixture: the guard's scope closes before the blocking receive.

use std::sync::mpsc::Receiver;
use std::sync::Mutex;

/// Snapshots the total, then blocks with the lock released.
pub fn drain(total: &Mutex<u32>, rx: &Receiver<u32>) -> u32 {
    let mut base = 0;
    if let Ok(g) = total.lock() {
        base = *g;
    }
    rx.recv().unwrap_or(0) + base
}

#[cfg(test)]
mod tests {
    #[test]
    fn present() {
        assert!(true);
    }
}
