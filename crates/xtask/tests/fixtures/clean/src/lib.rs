//! Fixture: fully conforming crate.

use std::collections::BTreeMap;

/// Deterministic, sorted, panic-free emission.
pub fn render(counts: &BTreeMap<u32, u32>) -> String {
    let mut out = String::new();
    for (k, v) in counts {
        out.push_str(&format!("{k}\t{v}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_sorted() {
        let mut m = BTreeMap::new();
        m.insert(2, 1);
        m.insert(1, 9);
        assert_eq!(render(&m), "1\t9\n2\t1\n");
    }
}
