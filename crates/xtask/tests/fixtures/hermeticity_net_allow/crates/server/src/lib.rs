//! Fixture: the serving crate is the sanctioned network boundary.

use std::net::TcpListener;

/// Binds an ephemeral loop-back listener.
pub fn bind_any() -> std::io::Result<TcpListener> {
    TcpListener::bind(("127.0.0.1", 0))
}

#[cfg(test)]
mod tests {
    #[test]
    fn present() {
        assert!(true);
    }
}
