//! Fixture: hermetic sources, unhermetic manifest.

#[cfg(test)]
mod tests {
    #[test]
    fn present() {
        assert!(true);
    }
}
