//! Fixture: the catalog documents a failpoint the code no longer
//! plants.

pub fn work() {
    soi_util::failpoint_crash!("fixture.crash");
}

#[cfg(test)]
mod tests {
    #[test]
    fn present() {
        assert!(true);
    }
}
