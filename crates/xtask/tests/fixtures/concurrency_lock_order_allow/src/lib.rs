//! Fixture: nested locks that follow one global order everywhere.

use std::sync::Mutex;

/// Shared pipeline state with two independent locks.
pub struct Pair {
    /// Protects the queue.
    pub queue: Mutex<u32>,
    /// Protects the stats.
    pub stats: Mutex<u32>,
}

/// Takes `queue` then `stats`.
pub fn enqueue(p: &Pair) -> u32 {
    if let Ok(q) = p.queue.lock() {
        if let Ok(s) = p.stats.lock() {
            return *q + *s;
        }
    }
    0
}

/// Also takes `queue` then `stats` — consistent with [`enqueue`].
pub fn report(p: &Pair) -> u32 {
    if let Ok(q) = p.queue.lock() {
        if let Ok(s) = p.stats.lock() {
            return *q * 2 + *s;
        }
    }
    0
}

#[cfg(test)]
mod tests {
    #[test]
    fn present() {
        assert!(true);
    }
}
