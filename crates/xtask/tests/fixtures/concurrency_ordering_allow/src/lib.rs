//! Fixture: justified and whitelisted memory orderings pass clean.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// A readiness flag plus a monotonic hit counter.
pub struct Flag {
    /// Set once initialization completes.
    ready: AtomicBool,
    /// Hits observed so far.
    hits: AtomicU64,
}

impl Flag {
    /// Marks the flag ready.
    pub fn set(&self) {
        // ordering: the flag is the whole payload — nothing else is
        // published through it, so Relaxed suffices.
        self.ready.store(true, Ordering::Relaxed);
    }

    /// Records one hit (whitelisted: monotonic-counter RMW).
    pub fn hit(&self) -> u64 {
        self.hits.fetch_add(1, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn present() {
        assert!(true);
    }
}
