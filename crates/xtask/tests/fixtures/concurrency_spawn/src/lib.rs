//! Fixture: a raw thread spawn outside the sanctioned crates.

/// Spawns a detached worker (fan-out should go through the pool).
pub fn run() -> std::thread::JoinHandle<()> {
    std::thread::spawn(|| {})
}

#[cfg(test)]
mod tests {
    #[test]
    fn present() {
        assert!(true);
    }
}
