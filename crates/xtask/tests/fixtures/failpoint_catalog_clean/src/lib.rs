//! Fixture: planted failpoints and catalog agree; test scratch sites
//! and allowed lines stay out of the contract.

pub fn work() -> Result<(), ()> {
    soi_util::failpoint!("fixture.io.read", ());
    soi_util::failpoint_crash!("fixture.crash");
    // Bench-harness scratch site, intentionally uncataloged.
    // xtask-allow: failpoint_catalog
    soi_util::failpoint::trigger("fixture.scratch").map_err(|_| ())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    #[test]
    fn present() {
        let _ = soi_util::failpoint::trigger("fixture.test_only");
        assert!(true);
    }
}
