//! Fixture: entropy-seeded RNG.

pub fn roll() -> u64 {
    let mut rng = thread_rng();
    rng.next_u64()
}

#[cfg(test)]
mod tests {
    #[test]
    fn present() {
        assert!(true);
    }
}
