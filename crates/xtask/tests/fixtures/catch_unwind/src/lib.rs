//! Fixture: swallowing a panic outside a supervised worker loop.

/// Runs a closure, pretending its panics are recoverable.
pub fn shrug(f: impl Fn() + std::panic::UnwindSafe) -> bool {
    std::panic::catch_unwind(f).is_ok()
}

#[cfg(test)]
mod tests {
    #[test]
    fn present() {
        assert!(true);
    }
}
