//! Fixture: a planted failpoint missing from the catalog.

pub fn work() {
    soi_util::failpoint_crash!("fixture.crash");
    soi_util::failpoint_crash!("fixture.undocumented");
}

#[cfg(test)]
mod tests {
    #[test]
    fn present() {
        assert!(true);
    }
}
