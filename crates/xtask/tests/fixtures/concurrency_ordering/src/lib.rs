//! Fixture: a memory-ordering literal with no justification.

use std::sync::atomic::{AtomicBool, Ordering};

/// A readiness flag shared across threads.
pub struct Flag {
    /// Set once initialization completes.
    ready: AtomicBool,
}

impl Flag {
    /// Marks the flag ready.
    pub fn set(&self) {
        self.ready.store(true, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn present() {
        assert!(true);
    }
}
