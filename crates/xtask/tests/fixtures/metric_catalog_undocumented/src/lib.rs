//! Fixture: a registered metric missing from the catalog.

pub fn work() {
    soi_obs::counter("fixture.documented").add(1);
    soi_obs::counter("fixture.undocumented").add(1);
}

#[cfg(test)]
mod tests {
    #[test]
    fn present() {
        assert!(true);
    }
}
