//! Fixture: an unjustified `unreachable!` arm in library code.

pub fn parity(x: u32) -> &'static str {
    match x % 2 {
        0 => "even",
        1 => "odd",
        _ => unreachable!(),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn present() {
        assert!(true);
    }
}
