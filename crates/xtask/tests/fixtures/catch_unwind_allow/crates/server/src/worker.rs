//! Fixture: the server worker loop is a sanctioned supervision point.

/// Executes one job under supervision, reporting whether it panicked.
pub fn supervise(f: impl Fn() + std::panic::UnwindSafe) -> bool {
    std::panic::catch_unwind(f).is_ok()
}

#[cfg(test)]
mod tests {
    #[test]
    fn present() {
        assert!(true);
    }
}
