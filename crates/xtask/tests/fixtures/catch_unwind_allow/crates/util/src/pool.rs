//! Fixture: the generic worker pool is a sanctioned supervision point.

/// Runs pool work under supervision, reporting whether it panicked.
pub fn supervise(f: impl Fn() + std::panic::UnwindSafe) -> bool {
    std::panic::catch_unwind(f).is_ok()
}

#[cfg(test)]
mod tests {
    #[test]
    fn present() {
        assert!(true);
    }
}
