//! Fixture: library code printing straight to stderr.

pub fn noisy(progress: usize) {
    eprintln!("progress: {progress}");
}

#[cfg(test)]
mod tests {
    #[test]
    fn present() {
        assert!(true);
    }
}
