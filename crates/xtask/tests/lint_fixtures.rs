//! End-to-end tests of the `xtask lint` binary against fixture trees.
//!
//! Each fixture under `tests/fixtures/` seeds exactly one violation; the
//! tests assert that the right pass fires at the right file and line and
//! that the process exits nonzero. The `clean` fixture and the real
//! workspace tree must both exit 0 — the latter keeps the repo honest:
//! if a lint regression slips into any crate, this suite fails.

use std::path::{Path, PathBuf};
use std::process::Output;

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn run_lint(root: &Path) -> Output {
    std::process::Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["lint", "--root"])
        .arg(root)
        .output()
        .expect("spawn xtask binary")
}

/// Runs the linter on a fixture and asserts a nonzero exit plus a
/// finding at `location` (a `path:line: [pass]` prefix).
fn assert_flags(fixture: &str, location: &str) {
    let out = run_lint(&fixtures_dir().join(fixture));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        !out.status.success(),
        "{fixture}: expected nonzero exit; stdout:\n{stdout}"
    );
    assert!(
        stdout.lines().any(|l| l.starts_with(location)),
        "{fixture}: no finding starting with `{location}`; got:\n{stdout}"
    );
}

#[test]
fn determinism_flags_entropy_rng() {
    assert_flags("determinism_rng", "src/lib.rs:4: [determinism]");
}

#[test]
fn determinism_flags_unordered_emission() {
    assert_flags("determinism_hashmap", "src/lib.rs:8: [determinism]");
}

#[test]
fn panic_policy_flags_library_unwrap() {
    assert_flags("panic_policy", "src/lib.rs:4: [panic_policy]");
}

#[test]
fn panic_policy_flags_unjustified_unreachable() {
    assert_flags("panic_policy_unreachable", "src/lib.rs:7: [panic_policy]");
}

#[test]
fn panic_policy_flags_catch_unwind_outside_supervisors() {
    assert_flags("catch_unwind", "src/lib.rs:5: [panic_policy]");
}

#[test]
fn catch_unwind_allowed_in_supervision_points() {
    let out = run_lint(&fixtures_dir().join("catch_unwind_allow"));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "supervision-point catch_unwind flagged:\n{stdout}"
    );
    assert!(stdout.trim().is_empty(), "unexpected output:\n{stdout}");
}

#[test]
fn hermeticity_flags_registry_dependency() {
    assert_flags("hermeticity", "Cargo.toml:7: [hermeticity]");
}

#[test]
fn hermeticity_flags_net_outside_server() {
    assert_flags("hermeticity_net", "src/lib.rs:3: [hermeticity]");
}

#[test]
fn hermeticity_net_allowed_in_server_crate() {
    let out = run_lint(&fixtures_dir().join("hermeticity_net_allow"));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "server-crate net use flagged:\n{stdout}"
    );
    assert!(stdout.trim().is_empty(), "unexpected output:\n{stdout}");
}

#[test]
fn hygiene_flags_missing_module_docs() {
    assert_flags("hygiene_docs", "src/lib.rs:1: [hygiene]");
}

#[test]
fn hygiene_flags_missing_tests() {
    assert_flags("hygiene_tests", "Cargo.toml:1: [hygiene]");
}

#[test]
fn observability_flags_library_eprintln() {
    assert_flags("observability", "src/lib.rs:4: [observability]");
}

#[test]
fn concurrency_flags_lock_order_inversion() {
    assert_flags("concurrency_lock_order", "src/lib.rs:26: [concurrency]");
}

#[test]
fn concurrency_flags_guard_across_blocking_call() {
    assert_flags("concurrency_guard_blocking", "src/lib.rs:9: [concurrency]");
}

#[test]
fn concurrency_flags_unjustified_ordering() {
    assert_flags("concurrency_ordering", "src/lib.rs:14: [concurrency]");
}

#[test]
fn concurrency_flags_raw_spawn_outside_sanctioned_crates() {
    assert_flags("concurrency_spawn", "src/lib.rs:5: [concurrency]");
}

#[test]
fn metric_catalog_flags_undocumented_registration() {
    assert_flags(
        "metric_catalog_undocumented",
        "src/lib.rs:5: [metric_catalog]",
    );
}

#[test]
fn metric_catalog_flags_stale_doc_row() {
    assert_flags(
        "metric_catalog_stale",
        "docs/OBSERVABILITY.md:7: [metric_catalog]",
    );
}

#[test]
fn metric_catalog_clean_fixture_passes() {
    let out = run_lint(&fixtures_dir().join("metric_catalog_clean"));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "clean catalog flagged:\n{stdout}");
    assert!(stdout.trim().is_empty(), "unexpected output:\n{stdout}");
}

#[test]
fn failpoint_catalog_flags_undocumented_plant() {
    assert_flags(
        "failpoint_catalog_undocumented",
        "src/lib.rs:5: [failpoint_catalog]",
    );
}

#[test]
fn failpoint_catalog_flags_stale_doc_row() {
    assert_flags(
        "failpoint_catalog_stale",
        "docs/ROBUSTNESS.md:7: [failpoint_catalog]",
    );
}

#[test]
fn failpoint_catalog_clean_fixture_passes() {
    let out = run_lint(&fixtures_dir().join("failpoint_catalog_clean"));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "clean catalog flagged:\n{stdout}");
    assert!(stdout.trim().is_empty(), "unexpected output:\n{stdout}");
}

#[test]
fn concurrency_allow_fixtures_pass_clean() {
    for fixture in [
        // Consistent nesting order everywhere.
        "concurrency_lock_order_allow",
        // The guard's scope closes before the blocking receive.
        "concurrency_guard_blocking_allow",
        // `// ordering:` justification plus whitelisted counter RMW.
        "concurrency_ordering_allow",
        // Spawning inside `crates/server` is the sanctioned boundary.
        "concurrency_spawn_allow",
    ] {
        let out = run_lint(&fixtures_dir().join(fixture));
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(out.status.success(), "{fixture} flagged:\n{stdout}");
        assert!(
            stdout.trim().is_empty(),
            "{fixture}: unexpected output:\n{stdout}"
        );
    }
}

#[test]
fn each_bad_fixture_reports_exactly_one_finding() {
    for fixture in [
        "determinism_rng",
        "determinism_hashmap",
        "panic_policy",
        "panic_policy_unreachable",
        "catch_unwind",
        "hermeticity",
        "hermeticity_net",
        "hygiene_docs",
        "hygiene_tests",
        "observability",
        "concurrency_lock_order",
        "concurrency_guard_blocking",
        "concurrency_ordering",
        "concurrency_spawn",
        "metric_catalog_undocumented",
        "metric_catalog_stale",
        "failpoint_catalog_undocumented",
        "failpoint_catalog_stale",
    ] {
        let out = run_lint(&fixtures_dir().join(fixture));
        let stdout = String::from_utf8_lossy(&out.stdout);
        let findings = stdout.lines().filter(|l| l.contains(": [")).count();
        assert_eq!(
            findings, 1,
            "{fixture}: expected exactly the seeded violation; got:\n{stdout}"
        );
    }
}

#[test]
fn clean_fixture_exits_zero() {
    let out = run_lint(&fixtures_dir().join("clean"));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "clean fixture flagged:\n{stdout}");
    assert!(stdout.trim().is_empty(), "clean fixture output:\n{stdout}");
}

#[test]
fn real_workspace_tree_is_clean() {
    // crates/xtask/../.. is the workspace root.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists");
    let out = run_lint(&root);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "workspace tree has lint findings:\n{stdout}"
    );
}
