//! SKIM-style greedy seed selection over combined reachability sketches.
//!
//! The lazy-greedy loop of `soi-influence` (CELF / RIS max-cover) applied
//! to sketch-estimated **residual** spreads:
//!
//! * a candidate's priority is its estimated marginal spread given the
//!   pairs already covered — for a saturated sketch the conditional
//!   bottom-k estimator `#uncovered sketch entries below τ / τ / ℓ`, for
//!   an unsaturated one the exact uncovered count over its full pair set;
//! * residuals only shrink as coverage grows, so stale heap entries are
//!   safely re-scored lazily (pop, re-estimate, re-push) exactly like the
//!   RIS max-cover loop;
//! * when a seed is **selected**, its true marginal coverage is computed
//!   exactly: the ℓ worlds are re-derived on demand from
//!   `world_rng(seed, i)` (no world storage — the memory contract stays
//!   `O(k · n)`) and a forward BFS marks newly covered nodes per world,
//!   the SKIM discipline that keeps estimation error from compounding
//!   across rounds.
//!
//! One deadline tick per selection round; on expiry the partial result is
//! the seed prefix an uninterrupted run would have selected.

use crate::{rank_unit, ReachSketches};
use soi_graph::{NodeId, ProbGraph};
use soi_sampling::world::world_rng;
use soi_sampling::WorldSampler;
use soi_util::runtime::{Deadline, Outcome};
use soi_util::BitSet;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Result of a sketch-based seed selection.
#[derive(Clone, Debug)]
pub struct SelectResult {
    /// Selected seeds in selection order.
    pub seeds: Vec<NodeId>,
    /// Exact (over the ℓ sampled worlds) expected spread of the seed
    /// prefix after each selection: `covered pairs / ℓ`.
    pub coverage: Vec<f64>,
}

#[derive(Debug)]
struct Cand {
    gain: f64,
    node: NodeId,
    round: usize,
}

impl PartialEq for Cand {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Cand {}
impl PartialOrd for Cand {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Cand {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on gain; ties go to the lower node id so selection is
        // deterministic even under heavy gain collisions.
        self.gain
            .total_cmp(&other.gain)
            .then(other.node.cmp(&self.node))
    }
}

/// Estimated marginal spread of `u` given the per-world covered sets.
fn residual_gain(sk: &ReachSketches, u: NodeId, covered: &[BitSet]) -> f64 {
    let s = sk.sketch_of(u);
    let ell = sk.num_worlds() as f64;
    let uncovered = |entries: &[crate::Entry]| {
        entries
            .iter()
            .filter(|e| !covered[e.world as usize].contains(e.node as usize))
            .count() as f64
    };
    if !sk.is_saturated(u) {
        // Exhaustive sketch: the residual is exact.
        uncovered(s) / ell
    } else {
        // Conditional bottom-k estimator: the k−1 entries below the
        // threshold τ are a uniform rank-sample of u's pair set.
        let k = s.len();
        let tau = rank_unit(s[k - 1].rank);
        uncovered(&s[..k - 1]) / tau / ell
    }
}

/// Greedy seed selection: lazy residual-sketch estimates drive the heap,
/// exact forward-BFS coverage updates follow each selection. Deterministic
/// in the sketch build seed; one deadline tick per round (the first round
/// always runs). `pg` must be the graph the sketches were built over.
pub fn select_seeds(
    pg: &ProbGraph,
    sk: &ReachSketches,
    k_seeds: usize,
    deadline: &Deadline,
) -> Outcome<SelectResult> {
    assert_eq!(
        pg.fingerprint(),
        sk.graph_fingerprint(),
        "sketches were built over a different graph"
    );
    let _span = soi_obs::span("sketch.select");
    let n = sk.num_nodes();
    let ell = sk.num_worlds();
    let k_seeds = k_seeds.min(n);

    let mut covered: Vec<BitSet> = (0..ell).map(|_| BitSet::new(n)).collect();
    let mut covered_pairs = 0u64;
    let mut heap: BinaryHeap<Cand> = (0..n as NodeId)
        .map(|v| Cand {
            gain: residual_gain(sk, v, &covered),
            node: v,
            round: 0,
        })
        .collect();

    let mut sampler = WorldSampler::new();
    let mut queue: Vec<NodeId> = Vec::new();
    let mut seeds = Vec::with_capacity(k_seeds);
    let mut coverage = Vec::with_capacity(k_seeds);
    for round in 1..=k_seeds {
        let proceed = deadline.tick(1);
        if round > 1 && !proceed {
            break;
        }
        loop {
            let Some(top) = heap.pop() else {
                let done = seeds.len() as u64;
                return deadline.outcome(SelectResult { seeds, coverage }, done, k_seeds as u64);
            };
            if top.round == round {
                // Exact marginal coverage: forward BFS per re-derived
                // world over still-uncovered nodes.
                for (i, cov) in covered.iter_mut().enumerate() {
                    let world = sampler.sample(pg, &mut world_rng(sk.config().seed, i));
                    if cov.contains(top.node as usize) {
                        continue;
                    }
                    cov.insert(top.node as usize);
                    covered_pairs += 1;
                    queue.clear();
                    queue.push(top.node);
                    while let Some(u) = queue.pop() {
                        for &w in world.out_neighbors(u) {
                            if cov.insert(w as usize) {
                                covered_pairs += 1;
                                queue.push(w);
                            }
                        }
                    }
                }
                seeds.push(top.node);
                coverage.push(covered_pairs as f64 / ell as f64);
                soi_obs::counter_add!("sketch.select_rounds", 1);
                break;
            }
            heap.push(Cand {
                gain: residual_gain(sk, top.node, &covered),
                node: top.node,
                round,
            });
        }
    }
    let done = seeds.len() as u64;
    deadline.outcome(SelectResult { seeds, coverage }, done, k_seeds as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SketchConfig;
    use soi_graph::gen;
    use soi_util::rng::Xoshiro256pp;

    fn ba_graph(n: usize, seed: u64) -> ProbGraph {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        ProbGraph::fixed(gen::barabasi_albert(n, 2, true, &mut rng), 0.2).unwrap()
    }

    fn build(pg: &ProbGraph, worlds: usize, k: usize, seed: u64) -> ReachSketches {
        ReachSketches::build(
            pg,
            SketchConfig {
                num_worlds: worlds,
                k,
                seed,
                threads: 1,
            },
        )
    }

    #[test]
    fn hub_wins_on_a_star() {
        let mut b = soi_graph::GraphBuilder::new(10);
        for leaf in 1..10 {
            b.add_weighted_edge(0, leaf, 0.9);
        }
        let pg = b.build_prob().unwrap();
        let sk = build(&pg, 128, 32, 2);
        let r = select_seeds(&pg, &sk, 2, &Deadline::unlimited()).value();
        assert_eq!(r.seeds[0], 0);
        // Coverage after the hub ≈ 1 + 9 · 0.9 over the sampled worlds.
        assert!((r.coverage[0] - 9.1).abs() < 1.0, "{}", r.coverage[0]);
    }

    #[test]
    fn selection_is_deterministic_and_duplicate_free() {
        let pg = ba_graph(80, 3);
        let sk = build(&pg, 48, 24, 7);
        let a = select_seeds(&pg, &sk, 8, &Deadline::unlimited()).value();
        let b = select_seeds(&pg, &sk, 8, &Deadline::unlimited()).value();
        assert_eq!(a.seeds, b.seeds);
        assert_eq!(a.coverage, b.coverage);
        let mut s = a.seeds.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), a.seeds.len());
        assert!(a.coverage.windows(2).all(|w| w[1] >= w[0] - 1e-12));
    }

    #[test]
    fn budgeted_selection_yields_a_seed_prefix() {
        let pg = ba_graph(60, 4);
        let sk = build(&pg, 32, 16, 9);
        let full = select_seeds(&pg, &sk, 6, &Deadline::unlimited()).value();

        let partial = select_seeds(&pg, &sk, 6, &Deadline::ticks(3));
        assert!(!partial.is_complete());
        assert_eq!(partial.progress().unwrap().done, 3);
        let partial = partial.value();
        assert_eq!(partial.seeds, full.seeds[..3].to_vec());
        assert_eq!(partial.coverage, full.coverage[..3].to_vec());

        // Zero budget still selects the first seed (first round is free).
        let one = select_seeds(&pg, &sk, 6, &Deadline::ticks(0)).value();
        assert_eq!(one.seeds, full.seeds[..1].to_vec());
    }

    #[test]
    fn selection_beats_random_seeds_on_spread() {
        let pg = ba_graph(100, 5);
        let sk = build(&pg, 64, 32, 11);
        let picked = select_seeds(&pg, &sk, 5, &Deadline::unlimited()).value();
        let sketch_spread = soi_sampling::estimate_spread(&pg, &picked.seeds, 3000, 99);
        let random: Vec<NodeId> = vec![1, 21, 41, 61, 81];
        let random_spread = soi_sampling::estimate_spread(&pg, &random, 3000, 99);
        assert!(
            sketch_spread >= random_spread,
            "sketch {sketch_spread} < random {random_spread}"
        );
    }

    #[test]
    #[should_panic(expected = "different graph")]
    fn wrong_graph_is_rejected() {
        let pg = ba_graph(30, 6);
        let other = ba_graph(30, 7);
        let sk = build(&pg, 8, 8, 1);
        let _ = select_seeds(&other, &sk, 2, &Deadline::unlimited());
    }
}
