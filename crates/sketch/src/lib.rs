//! # soi-sketch
//!
//! Bottom-k **combined reachability sketches** (Cohen et al., "Sketch-based
//! Influence Maximization and Computation") — the workspace's second spread
//! oracle, selectable alongside the cascade index.
//!
//! The cascade index stores every sampled world exactly (condensation +
//! component matrix); memory grows with ℓ · world structure and becomes the
//! binding constraint well before million-node graphs. This crate trades
//! exactness for an `O(k · n)` summary over the **same ℓ sampled worlds**:
//!
//! 1. every (node, world) pair `(v, i)` gets a fixed uniform 64-bit rank
//!    derived from `(seed, i, v)` — a pure function, no stored randomness;
//! 2. per world, nodes are processed in increasing rank order with a pruned
//!    reverse BFS, so each node `u` collects exactly the `k` smallest ranks
//!    among the pairs `{(v, i) : v reachable from u in world i}` (fewer if
//!    `u` reaches fewer pairs);
//! 3. per-world bottom-k results are folded into one **combined** bottom-k
//!    sketch per node across all worlds (bottom-k sketches are mergeable:
//!    the k smallest of a union of bottom-k summaries are the k smallest of
//!    the union of the underlying sets).
//!
//! From a node's combined sketch, the reachable-pair cardinality — and hence
//! the expected spread `σ(u) = |X(u)| / ℓ` — follows from the classic
//! bottom-k estimator: exact when the sketch never saturated, `(k−1)/τ`
//! (with `τ` the k-th smallest rank mapped into `(0, 1]`) when it did.
//! Seed-set estimates merge member sketches first (see
//! [`ReachSketches::set_spread`]); greedy seed selection with residual
//! estimates lives in [`select`].
//!
//! Everything is deterministic in the build seed: ranks and worlds are pure
//! functions of `(seed, world, node)`, the parallel build partitions worlds
//! into contiguous chunks whose merge is order-independent, and the stored
//! sketch is canonically sorted — byte-stable across runs, thread counts,
//! and replicas.

pub mod select;

use soi_graph::{DiGraph, NodeId, ProbGraph};
use soi_sampling::world::world_rng;
use soi_sampling::WorldSampler;
use soi_util::ckpt;
use soi_util::hash::Mix64Hasher;
use soi_util::rng::derive_seed;
use soi_util::runtime::{Deadline, Outcome};
use soi_util::SoiError;
use std::path::Path;

pub use select::{select_seeds, SelectResult};

/// Worlds per deadline check (and per checkpointable unit) in the budgeted
/// build. Fixed independent of thread count so a partial prefix is
/// deterministic across machines, mirroring `soi_index::BUILD_BLOCK`.
pub const BUILD_BLOCK: usize = 16;

/// Salt decoupling the per-pair rank stream from the world-sampling
/// stream: both derive from the same master seed, but must never reuse a
/// sub-seed.
const RANK_SALT: u64 = 0xB077_0ACE_5EED_C0DE;

/// Build-time options for [`ReachSketches`].
#[derive(Clone, Copy, Debug)]
pub struct SketchConfig {
    /// Number of possible worlds ℓ to sample (shared semantics with the
    /// cascade index: world `i` is `world_rng(seed, i)`).
    pub num_worlds: usize,
    /// Sketch size k: ranks retained per node. Larger k tightens the
    /// cardinality estimate (relative error ~ `1/√(k−2)`) at linear memory
    /// cost.
    pub k: usize,
    /// Master seed; shared with the cascade index so both backends see the
    /// same sampled worlds.
    pub seed: u64,
    /// Worker threads for the build (0 = all available cores). Never
    /// affects the result.
    pub threads: usize,
}

impl Default for SketchConfig {
    fn default() -> Self {
        SketchConfig {
            num_worlds: 256,
            k: 64,
            seed: 0,
            threads: 0,
        }
    }
}

/// One sketch entry: the rank of the reachable pair `(node, world)`.
///
/// Derived lexicographic order `(rank, world, node)` is the canonical
/// entry order everywhere — rank collisions (astronomically unlikely) tie
/// deterministically.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Entry {
    /// Uniform 64-bit rank of the pair, a pure function of
    /// `(seed, world, node)`.
    pub rank: u64,
    /// World index `i` of the pair.
    pub world: u32,
    /// Node `v` of the pair (the node *reached*).
    pub node: NodeId,
}

/// The uniform rank of pair `(v, i)` under `seed`.
#[inline]
fn pair_rank(seed: u64, world: usize, node: NodeId) -> u64 {
    derive_seed(derive_seed(seed ^ RANK_SALT, world as u64), u64::from(node))
}

/// Maps a `u64` rank onto `(0, 1]` for the cardinality estimator.
#[inline]
fn rank_unit(rank: u64) -> f64 {
    const TWO64: f64 = 18_446_744_073_709_551_616.0;
    (rank as f64 + 1.0) / TWO64
}

/// Per-node bottom-k combined reachability sketches over ℓ sampled worlds.
///
/// Storage is node-major fixed k-blocks: node `v`'s sketch is
/// `entries[v·k .. v·k + sizes[v]]`, sorted ascending. `sizes[v] < k`
/// means the sketch holds node `v`'s **entire** reachable-pair set (the
/// estimate is exact); `sizes[v] == k` means it saturated and estimates
/// apply.
#[derive(Clone, Debug)]
pub struct ReachSketches {
    num_nodes: usize,
    graph_fingerprint: u64,
    config: SketchConfig,
    entries: Vec<Entry>,
    sizes: Vec<u32>,
}

/// Checkpoint/run options for [`ReachSketches::build_resumable`].
pub struct BuildOpts<'a> {
    /// Cooperative budget: one tick per sampled world, checked at block
    /// boundaries.
    pub deadline: &'a Deadline,
    /// Checkpoint file to write between blocks (and resume from).
    pub checkpoint: Option<&'a Path>,
    /// Worlds between checkpoint writes (rounded up to block boundaries).
    pub checkpoint_every: u64,
    /// Resume from `checkpoint` when it exists (fresh start otherwise).
    pub resume: bool,
}

impl ReachSketches {
    /// Builds combined sketches over `config.num_worlds` sampled worlds.
    /// Deterministic in `config.seed`; thread count never changes the
    /// result.
    ///
    /// ```
    /// use soi_graph::{gen, ProbGraph};
    /// use soi_sketch::{ReachSketches, SketchConfig};
    /// let pg = ProbGraph::fixed(gen::path(4), 1.0).unwrap();
    /// let sk = ReachSketches::build(&pg, SketchConfig {
    ///     num_worlds: 8, k: 64, seed: 1, ..SketchConfig::default()
    /// });
    /// // Deterministic path: node 0 reaches all 4 nodes in every world,
    /// // and k = 64 > 8 · 4 pairs keeps the sketch exhaustive (exact).
    /// assert!((sk.node_spread(0) - 4.0).abs() < 1e-9);
    /// ```
    pub fn build(pg: &ProbGraph, config: SketchConfig) -> Self {
        Self::build_budgeted(pg, config, &Deadline::unlimited()).value()
    }

    /// Budgeted [`build`](Self::build): one tick per sampled world,
    /// checked at [`BUILD_BLOCK`] boundaries. On expiry the partial
    /// sketches cover a *prefix* of the world ids — identical to the
    /// first worlds of an uninterrupted build, regardless of thread
    /// count. At least one block is always built.
    pub fn build_budgeted(
        pg: &ProbGraph,
        config: SketchConfig,
        deadline: &Deadline,
    ) -> Outcome<Self> {
        match Self::build_with(pg, config, deadline, None, &mut |_, _| Ok(())) {
            Ok(outcome) => outcome,
            // The no-op block callback is infallible and no failpoint is
            // planted on this path. xtask-allow: panic_policy
            Err(e) => unreachable!("unbudgeted sketch build failed: {e}"),
        }
    }

    /// Checkpointable [`build_budgeted`](Self::build_budgeted): persists
    /// progress to `opts.checkpoint` every `opts.checkpoint_every` worlds
    /// (block-aligned, atomic, checksummed — kind
    /// [`soi_util::ckpt::KIND_SKETCH_BUILD`]) and, with `opts.resume`,
    /// continues from the recorded world prefix. A resumed build is
    /// byte-identical to an uninterrupted one.
    pub fn build_resumable(
        pg: &ProbGraph,
        config: SketchConfig,
        opts: &BuildOpts<'_>,
    ) -> Result<Outcome<Self>, SoiError> {
        let graph_fingerprint = pg.fingerprint();
        let config_fingerprint = Self::config_fingerprint(&config);
        let mut resume_state = None;
        if opts.resume {
            if let Some(path) = opts.checkpoint {
                if path.exists() {
                    let ck = ckpt::read_checkpoint(path, ckpt::KIND_SKETCH_BUILD)?;
                    ck.validate(
                        ckpt::KIND_SKETCH_BUILD,
                        graph_fingerprint,
                        config_fingerprint,
                    )?;
                    let builder = Builder::decode(&ck.payload, pg.num_nodes(), config.k)?;
                    soi_obs::counter_add!("sketch.build_resumes", 1);
                    soi_obs::event!(
                        soi_obs::Level::Info,
                        "sketch build resuming from world {}/{}",
                        ck.done_units,
                        ck.total_units
                    );
                    resume_state = Some((ck.done_units as usize, builder));
                }
            }
        }
        let every = opts.checkpoint_every.max(1);
        let mut since_ckpt = 0u64;
        Self::build_with(
            pg,
            config,
            opts.deadline,
            resume_state,
            &mut |done, builder| {
                soi_util::failpoint!("sketch.build.block");
                since_ckpt += BUILD_BLOCK as u64;
                if let Some(path) = opts.checkpoint {
                    if since_ckpt >= every {
                        since_ckpt = 0;
                        ckpt::write_checkpoint(
                            path,
                            &ckpt::Checkpoint {
                                kind: ckpt::KIND_SKETCH_BUILD,
                                graph_fingerprint,
                                config_fingerprint,
                                total_units: config.num_worlds as u64,
                                done_units: done as u64,
                                payload: builder.encode(config.seed),
                            },
                        )?;
                        soi_obs::counter_add!("sketch.checkpoints_written", 1);
                    }
                }
                Ok(())
            },
        )
    }

    /// The shared block-synchronous build loop. `between(done, builder)`
    /// runs after every block with the worlds-completed count; the
    /// resumable entry point hangs failpoints and checkpoint writes on it.
    fn build_with(
        pg: &ProbGraph,
        config: SketchConfig,
        deadline: &Deadline,
        resume: Option<(usize, Builder)>,
        between: &mut dyn FnMut(usize, &Builder) -> Result<(), SoiError>,
    ) -> Result<Outcome<Self>, SoiError> {
        assert!(config.num_worlds > 0, "need at least one world");
        assert!(config.k > 0, "sketch size k must be positive");
        let _span = soi_obs::span("sketch.build");
        let n = pg.num_nodes();
        let ell = config.num_worlds;
        let k = config.k;
        let threads = soi_util::pool::effective_threads(config.threads, BUILD_BLOCK);

        let (start, mut combined) = match resume {
            Some((done, builder)) => (done.min(ell), builder),
            None => (0, Builder::new(n, k)),
        };
        // Worker-local builders are reused across blocks (reset is a size
        // fill, not a reallocation).
        let mut locals: Vec<Builder> = (0..threads).map(|_| Builder::new(n, k)).collect();
        let mut next = start;
        while next < ell {
            let block_len = BUILD_BLOCK.min(ell - next);
            // The first block of this run proceeds unconditionally (its
            // ticks still count) so a partial build is never empty.
            let proceed = deadline.tick(block_len as u64);
            if next > start && !proceed {
                break;
            }
            let per_worker = block_len.div_ceil(threads);
            let block_start = next;
            soi_util::pool::for_each_indexed_with(
                &mut locals,
                threads,
                || WorldScratch::new(n),
                |scratch, t, local| {
                    local.reset();
                    let lo = block_start + (t * per_worker).min(block_len);
                    let hi = block_start + ((t + 1) * per_worker).min(block_len);
                    for i in lo..hi {
                        accumulate_world(pg, &config, i, scratch, local);
                    }
                },
            );
            // Bottom-k merge is commutative and associative, so folding the
            // worker-local sketches in slot order is chunking-independent.
            for local in &locals {
                combined.merge_from(local);
            }
            next += block_len;
            between(next, &combined)?;
        }

        let done = next;
        let sketches = combined.finish(ReachMeta {
            graph_fingerprint: pg.fingerprint(),
            config: SketchConfig {
                // Record the ℓ actually built so a partial sketch's own
                // config matches its true contents.
                num_worlds: done,
                ..config
            },
        });
        sketches.record_build_metrics();
        Ok(deadline.outcome(sketches, done as u64, ell as u64))
    }

    /// A 64-bit fingerprint of build configuration fields that change
    /// sketch contents (`threads` excluded: builds are thread-count
    /// invariant). Pins checkpoints to their run.
    pub fn config_fingerprint(config: &SketchConfig) -> u64 {
        let mut h = Mix64Hasher::new();
        h.update_u64(config.num_worlds as u64);
        h.update_u64(config.k as u64);
        h.update_u64(config.seed);
        h.finish()
    }

    /// A 64-bit cache key identifying the sketches [`build`](Self::build)
    /// would produce for `(pg, config)`, computable without building.
    /// `soi serve` keys its backend cache on this plus a backend tag.
    pub fn cache_key(pg: &ProbGraph, config: &SketchConfig) -> u64 {
        let mut h = Mix64Hasher::new();
        h.update_u64(pg.fingerprint());
        h.update_u64(Self::config_fingerprint(config));
        h.finish()
    }

    /// A 64-bit fingerprint of the built sketch contents (dimensions,
    /// config, every stored entry). Byte-identical builds agree.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Mix64Hasher::new();
        h.update_u64(self.num_nodes as u64);
        h.update_u64(self.graph_fingerprint);
        h.update_u64(Self::config_fingerprint(&self.config));
        for v in 0..self.num_nodes {
            let s = self.sketch_of(v as NodeId);
            h.update_u64(s.len() as u64);
            for e in s {
                h.update_u64(e.rank);
                h.update_u64(u64::from(e.world) << 32 | u64::from(e.node));
            }
        }
        h.finish()
    }

    /// Number of nodes of the sketched graph.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of sampled worlds ℓ the sketches cover.
    pub fn num_worlds(&self) -> usize {
        self.config.num_worlds
    }

    /// The build configuration (with `num_worlds` reflecting the worlds
    /// actually built).
    pub fn config(&self) -> &SketchConfig {
        &self.config
    }

    /// Fingerprint of the graph the sketches were built over.
    pub fn graph_fingerprint(&self) -> u64 {
        self.graph_fingerprint
    }

    /// Node `v`'s combined sketch: up to k entries, sorted ascending.
    #[inline]
    pub fn sketch_of(&self, v: NodeId) -> &[Entry] {
        let base = v as usize * self.config.k;
        &self.entries[base..base + self.sizes[v as usize] as usize]
    }

    /// Whether node `v`'s sketch saturated (holds estimates rather than
    /// the full reachable-pair set).
    #[inline]
    pub fn is_saturated(&self, v: NodeId) -> bool {
        self.sizes[v as usize] as usize == self.config.k
    }

    /// Estimated reachable-pair cardinality `|X(v)|` (exact when the
    /// sketch never saturated).
    fn pair_cardinality(&self, v: NodeId) -> f64 {
        let s = self.sketch_of(v);
        if s.len() < self.config.k {
            s.len() as f64
        } else {
            (self.config.k - 1) as f64 / rank_unit(s[self.config.k - 1].rank)
        }
    }

    /// Estimated expected spread `σ({v}) = |X(v)| / ℓ`.
    pub fn node_spread(&self, v: NodeId) -> f64 {
        soi_obs::counter_add!("sketch.estimates", 1);
        self.pair_cardinality(v) / self.config.num_worlds as f64
    }

    /// Estimated expected spread of a seed set: member sketches are merged
    /// (bottom-k of the deduplicated union — valid because each member is
    /// a bottom-k or the full set) and the union cardinality estimated.
    pub fn set_spread(&self, seeds: &[NodeId]) -> f64 {
        soi_obs::counter_add!("sketch.estimates", 1);
        let mut merged: Vec<Entry> = Vec::with_capacity(seeds.len() * self.config.k);
        for &s in seeds {
            merged.extend_from_slice(self.sketch_of(s));
        }
        merged.sort_unstable();
        // A pair reachable from several seeds contributes identical
        // entries (rank is a pure function of the pair); keep one.
        merged.dedup();
        let card = if merged.len() < self.config.k {
            // Every member sketch was exhaustive (a saturated member would
            // alone contribute k entries), so the union is exact.
            merged.len() as f64
        } else {
            (self.config.k - 1) as f64 / rank_unit(merged[self.config.k - 1].rank)
        };
        card / self.config.num_worlds as f64
    }

    /// Approximate heap footprint in bytes — the `O(k · n)` the sketch
    /// backend trades exactness for.
    pub fn memory_bytes(&self) -> usize {
        self.entries.len() * std::mem::size_of::<Entry>()
            + self.sizes.len() * std::mem::size_of::<u32>()
    }

    /// Total stored entries across all nodes.
    pub fn total_entries(&self) -> usize {
        self.sizes.iter().map(|&s| s as usize).sum()
    }

    /// Saves the sketches to `path` in the workspace checkpoint container
    /// (atomic, checksummed, fingerprint-pinned).
    pub fn save(&self, path: &Path) -> Result<(), SoiError> {
        let builder = Builder::from_sketches(self);
        ckpt::write_checkpoint(
            path,
            &ckpt::Checkpoint {
                kind: ckpt::KIND_SKETCH_BUILD,
                graph_fingerprint: self.graph_fingerprint,
                config_fingerprint: Self::config_fingerprint(&self.config),
                total_units: self.config.num_worlds as u64,
                done_units: self.config.num_worlds as u64,
                payload: builder.encode(self.config.seed),
            },
        )
    }

    /// Loads sketches saved by [`save`](Self::save). The caller validates
    /// graph identity via [`graph_fingerprint`](Self::graph_fingerprint).
    pub fn load(path: &Path) -> Result<ReachSketches, SoiError> {
        let ck = ckpt::read_checkpoint(path, ckpt::KIND_SKETCH_BUILD)?;
        let mut r = ckpt::ByteReader::new(&ck.payload);
        let n = usize::try_from(r.u64("num nodes")?)
            .map_err(|_| SoiError::Invalid("sketch node count exceeds address space".into()))?;
        let k = usize::try_from(r.u64("sketch k")?)
            .map_err(|_| SoiError::Invalid("sketch k exceeds address space".into()))?;
        let seed = r.u64("seed")?;
        let builder = Builder::decode(&ck.payload, n, k)?;
        Ok(builder.finish(ReachMeta {
            graph_fingerprint: ck.graph_fingerprint,
            config: SketchConfig {
                num_worlds: ck.done_units as usize,
                k,
                seed,
                threads: 0,
            },
        }))
    }

    fn record_build_metrics(&self) {
        soi_obs::counter_add!("sketch.builds", 1);
        soi_obs::counter_add!("sketch.worlds_built", self.config.num_worlds);
        soi_obs::counter_add!("sketch.entries_stored", self.total_entries());
        soi_obs::gauge("sketch.memory_bytes").set(self.memory_bytes() as f64);
        soi_obs::event!(
            soi_obs::Level::Info,
            "sketches built: {} worlds, k={}, {} entries, {} bytes",
            self.config.num_worlds,
            self.config.k,
            self.total_entries(),
            self.memory_bytes()
        );
    }
}

/// Metadata carried into [`Builder::finish`].
struct ReachMeta {
    graph_fingerprint: u64,
    config: SketchConfig,
}

/// Mutable bottom-k accumulator: node-major k-blocks maintained as
/// max-heaps so the current worst entry of a full block is O(1) to find
/// and replace.
struct Builder {
    num_nodes: usize,
    k: usize,
    sizes: Vec<u32>,
    heap: Vec<Entry>,
}

impl Builder {
    fn new(num_nodes: usize, k: usize) -> Self {
        Builder {
            num_nodes,
            k,
            sizes: vec![0; num_nodes],
            heap: vec![
                Entry {
                    rank: 0,
                    world: 0,
                    node: 0,
                };
                num_nodes * k
            ],
        }
    }

    /// Empties every block without releasing storage (worker reuse across
    /// blocks).
    fn reset(&mut self) {
        self.sizes.fill(0);
    }

    /// Offers `e` to node `u`'s bottom-k block.
    #[inline]
    fn offer(&mut self, u: usize, e: Entry) {
        let base = u * self.k;
        let size = self.sizes[u] as usize;
        if size < self.k {
            self.heap[base + size] = e;
            self.sizes[u] = size as u32 + 1;
            // Sift up.
            let mut i = size;
            while i > 0 {
                let p = (i - 1) / 2;
                if self.heap[base + p] < self.heap[base + i] {
                    self.heap.swap(base + p, base + i);
                    i = p;
                } else {
                    break;
                }
            }
        } else if e < self.heap[base] {
            self.heap[base] = e;
            self.sift_down(base);
        }
    }

    /// Restores the max-heap property of a full block after replacing its
    /// root.
    #[inline]
    fn sift_down(&mut self, base: usize) {
        let mut i = 0usize;
        loop {
            let l = 2 * i + 1;
            if l >= self.k {
                break;
            }
            let r = l + 1;
            let c = if r < self.k && self.heap[base + r] > self.heap[base + l] {
                r
            } else {
                l
            };
            if self.heap[base + c] > self.heap[base + i] {
                self.heap.swap(base + i, base + c);
                i = c;
            } else {
                break;
            }
        }
    }

    /// Folds another builder's blocks into this one. The result is the
    /// bottom-k of the union, independent of fold order.
    fn merge_from(&mut self, other: &Builder) {
        for u in 0..self.num_nodes {
            let base = u * self.k;
            for j in 0..other.sizes[u] as usize {
                self.offer(u, other.heap[base + j]);
            }
        }
    }

    /// Canonical serialized state: `n`, `k`, `seed`, then per-node sorted
    /// entry lists. Sorting makes the bytes a pure function of the entry
    /// *sets*, so checkpoints agree across thread counts.
    fn encode(&self, seed: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.heap.len() * 16);
        out.extend_from_slice(&(self.num_nodes as u64).to_le_bytes());
        out.extend_from_slice(&(self.k as u64).to_le_bytes());
        out.extend_from_slice(&seed.to_le_bytes());
        let mut block: Vec<Entry> = Vec::with_capacity(self.k);
        for u in 0..self.num_nodes {
            let base = u * self.k;
            let size = self.sizes[u] as usize;
            block.clear();
            block.extend_from_slice(&self.heap[base..base + size]);
            block.sort_unstable();
            out.extend_from_slice(&(size as u32).to_le_bytes());
            for e in &block {
                out.extend_from_slice(&e.rank.to_le_bytes());
                out.extend_from_slice(&e.world.to_le_bytes());
                out.extend_from_slice(&e.node.to_le_bytes());
            }
        }
        out
    }

    /// Encodes with a real seed slot (used by [`ReachSketches::save`]).
    fn from_sketches(sk: &ReachSketches) -> Builder {
        let mut b = Builder::new(sk.num_nodes, sk.config.k);
        for v in 0..sk.num_nodes {
            for &e in sk.sketch_of(v as NodeId) {
                b.offer(v, e);
            }
        }
        b
    }

    /// Inverse of [`encode`](Self::encode); `n`/`k` must match the
    /// resuming run.
    fn decode(payload: &[u8], num_nodes: usize, k: usize) -> Result<Builder, SoiError> {
        let mut r = ckpt::ByteReader::new(payload);
        let stored_n = r.u64("num nodes")?;
        let stored_k = r.u64("sketch k")?;
        let _seed = r.u64("seed")?;
        if stored_n != num_nodes as u64 || stored_k != k as u64 {
            return Err(SoiError::Invalid(format!(
                "sketch state is {stored_n} nodes / k={stored_k}, run wants {num_nodes} / k={k}"
            )));
        }
        let mut b = Builder::new(num_nodes, k);
        for u in 0..num_nodes {
            let size = r.u32("sketch size")? as usize;
            if size > k {
                return Err(SoiError::Invalid(format!(
                    "node {u}: sketch size {size} exceeds k={k}"
                )));
            }
            let base = u * k;
            for j in 0..size {
                let rank = r.u64("entry rank")?;
                let world = r.u32("entry world")?;
                let node = r.u32("entry node")?;
                // A sorted-ascending run written back in *descending*
                // order is a valid max-heap (every parent ≥ its children).
                b.heap[base + (size - 1 - j)] = Entry { rank, world, node };
            }
            b.sizes[u] = size as u32;
        }
        r.expect_end("sketch state")?;
        Ok(b)
    }

    /// Sorts every block ascending and freezes into [`ReachSketches`].
    fn finish(mut self, meta: ReachMeta) -> ReachSketches {
        for u in 0..self.num_nodes {
            let base = u * self.k;
            let size = self.sizes[u] as usize;
            self.heap[base..base + size].sort_unstable();
        }
        ReachSketches {
            num_nodes: self.num_nodes,
            graph_fingerprint: meta.graph_fingerprint,
            config: meta.config,
            entries: self.heap,
            sizes: self.sizes,
        }
    }
}

/// Reusable per-worker scratch for the per-world pruned reverse BFS.
struct WorldScratch {
    sampler: WorldSampler,
    ranks: Vec<u64>,
    order: Vec<NodeId>,
    /// Per-world entry count of each node; a node with `k` entries is
    /// complete for the world and prunes the search.
    counts: Vec<u32>,
    /// Generation-stamped visited marks (one generation per BFS).
    visited: Vec<u32>,
    generation: u32,
    queue: Vec<NodeId>,
}

impl WorldScratch {
    fn new(n: usize) -> Self {
        WorldScratch {
            sampler: WorldSampler::new(),
            ranks: vec![0; n],
            order: (0..n as NodeId).collect(),
            counts: vec![0; n],
            visited: vec![0; n],
            generation: 0,
            queue: Vec::new(),
        }
    }
}

/// Folds world `i`'s exact per-world bottom-k contributions into `local`.
///
/// Nodes are processed in increasing rank order with a reverse BFS pruned
/// at nodes that already hold k entries *for this world* — the classic
/// bottom-k construction, exact because any pruned path certifies k
/// smaller ranks already reached (or will reach, by induction over rank
/// order) everything upstream.
fn accumulate_world(
    pg: &ProbGraph,
    config: &SketchConfig,
    i: usize,
    scratch: &mut WorldScratch,
    local: &mut Builder,
) {
    let n = pg.num_nodes();
    let k = config.k as u32;
    let mut rng = world_rng(config.seed, i);
    let world: DiGraph = scratch.sampler.sample(pg, &mut rng);
    let rev = world.reverse();

    for v in 0..n {
        scratch.ranks[v] = pair_rank(config.seed, i, v as NodeId);
    }
    scratch
        .order
        .sort_unstable_by_key(|&v| (scratch.ranks[v as usize], v));
    scratch.counts.fill(0);

    for idx in 0..n {
        let v = scratch.order[idx];
        if scratch.counts[v as usize] >= k {
            continue;
        }
        let rank = scratch.ranks[v as usize];
        if scratch.generation == u32::MAX {
            scratch.visited.fill(0);
            scratch.generation = 0;
        }
        scratch.generation += 1;
        let generation = scratch.generation;
        scratch.queue.clear();
        scratch.queue.push(v);
        scratch.visited[v as usize] = generation;
        while let Some(u) = scratch.queue.pop() {
            scratch.counts[u as usize] += 1;
            local.offer(
                u as usize,
                Entry {
                    rank,
                    world: i as u32,
                    node: v,
                },
            );
            for &w in rev.out_neighbors(u) {
                if scratch.visited[w as usize] != generation && scratch.counts[w as usize] < k {
                    scratch.visited[w as usize] = generation;
                    scratch.queue.push(w);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_graph::{gen, Reachability};
    use soi_util::rng::Xoshiro256pp;

    fn test_graph(seed: u64) -> ProbGraph {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        ProbGraph::fixed(gen::gnm(60, 300, &mut rng), 0.3).unwrap()
    }

    fn config(worlds: usize, k: usize, seed: u64, threads: usize) -> SketchConfig {
        SketchConfig {
            num_worlds: worlds,
            k,
            seed,
            threads,
        }
    }

    /// Reference bottom-k over the exact per-world reachability sets.
    fn naive_sketches(pg: &ProbGraph, cfg: &SketchConfig) -> Vec<Vec<Entry>> {
        let n = pg.num_nodes();
        let mut sampler = WorldSampler::new();
        let mut reach = Reachability::new(n);
        let mut all: Vec<Vec<Entry>> = vec![Vec::new(); n];
        let mut out = Vec::new();
        for i in 0..cfg.num_worlds {
            let world = sampler.sample(pg, &mut world_rng(cfg.seed, i));
            for u in 0..n as NodeId {
                reach.reachable_from(&world, u, &mut out);
                for &v in &out {
                    all[u as usize].push(Entry {
                        rank: pair_rank(cfg.seed, i, v),
                        world: i as u32,
                        node: v,
                    });
                }
            }
        }
        for s in &mut all {
            s.sort_unstable();
            s.truncate(cfg.k);
        }
        all
    }

    #[test]
    fn sketches_match_naive_bottom_k_exactly() {
        let pg = test_graph(1);
        let cfg = config(12, 8, 77, 1);
        let sk = ReachSketches::build(&pg, cfg);
        let naive = naive_sketches(&pg, &cfg);
        for (v, expect) in naive.iter().enumerate() {
            assert_eq!(sk.sketch_of(v as NodeId), &expect[..], "node {v}");
        }
    }

    #[test]
    fn parallel_build_is_byte_identical_to_serial() {
        let pg = test_graph(2);
        let a = ReachSketches::build(&pg, config(24, 16, 5, 1));
        let b = ReachSketches::build(&pg, config(24, 16, 5, 4));
        assert_eq!(a.fingerprint(), b.fingerprint());
        for v in 0..pg.num_nodes() as NodeId {
            assert_eq!(a.sketch_of(v), b.sketch_of(v), "node {v}");
        }
    }

    #[test]
    fn unsaturated_nodes_estimate_exactly() {
        // Deterministic path 0→1→2→3: node 2 reaches {2,3} in every world,
        // so with k ≥ 2·ℓ its sketch is exhaustive and σ exact.
        let pg = ProbGraph::fixed(gen::path(4), 1.0).unwrap();
        let sk = ReachSketches::build(&pg, config(6, 64, 3, 1));
        assert!(!sk.is_saturated(2));
        assert!((sk.node_spread(2) - 2.0).abs() < 1e-12);
        assert!((sk.node_spread(3) - 1.0).abs() < 1e-12);
        assert!((sk.node_spread(0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn saturated_estimates_track_monte_carlo() {
        let pg = test_graph(3);
        let sk = ReachSketches::build(&pg, config(64, 64, 9, 2));
        for v in (0..60).step_by(7) {
            let mc = soi_sampling::estimate_spread(&pg, &[v as NodeId], 4000, 123);
            let est = sk.node_spread(v as NodeId);
            assert!(
                (est - mc).abs() < 0.45 * mc.max(1.0),
                "node {v}: sketch {est} vs mc {mc}"
            );
        }
    }

    #[test]
    fn set_spread_is_subadditive_and_covers_members() {
        let pg = test_graph(4);
        let sk = ReachSketches::build(&pg, config(32, 32, 11, 1));
        let seeds = [3 as NodeId, 17, 42];
        let set = sk.set_spread(&seeds);
        let best = seeds
            .iter()
            .map(|&s| sk.node_spread(s))
            .fold(0.0f64, f64::max);
        let sum: f64 = seeds.iter().map(|&s| sk.node_spread(s)).sum();
        assert!(set >= best - 1e-9, "set {set} < best member {best}");
        assert!(set <= sum + 1e-9, "set {set} > member sum {sum}");
        // Merging a seed with itself changes nothing.
        assert!((sk.set_spread(&[3, 3]) - sk.node_spread(3)).abs() < 1e-12);
    }

    #[test]
    fn budgeted_build_yields_a_world_prefix() {
        let pg = test_graph(8);
        let cfg = config(40, 16, 13, 2);
        let full = ReachSketches::build(&pg, cfg);

        let complete = ReachSketches::build_budgeted(&pg, cfg, &Deadline::unlimited());
        assert!(complete.is_complete());
        assert_eq!(complete.value_ref().fingerprint(), full.fingerprint());

        let partial = ReachSketches::build_budgeted(&pg, cfg, &Deadline::ticks(1));
        assert!(!partial.is_complete());
        let progress = partial.progress().unwrap();
        assert_eq!(progress.done, BUILD_BLOCK as u64);
        assert_eq!(progress.total, 40);
        let partial = partial.value();
        assert_eq!(partial.num_worlds(), BUILD_BLOCK);
        // The prefix is exactly what a BUILD_BLOCK-world build produces.
        let small = ReachSketches::build(
            &pg,
            SketchConfig {
                num_worlds: BUILD_BLOCK,
                ..cfg
            },
        );
        assert_eq!(partial.fingerprint(), small.fingerprint());
    }

    #[test]
    fn resumed_build_is_byte_identical() {
        let dir = std::env::temp_dir().join(format!("soi-sketch-resume-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sketch.ckpt");
        let pg = test_graph(9);
        let cfg = config(48, 12, 21, 2);
        let full = ReachSketches::build(&pg, cfg);

        // Interrupted run: one block, checkpoint written.
        let interrupted = ReachSketches::build_resumable(
            &pg,
            cfg,
            &BuildOpts {
                deadline: &Deadline::ticks(1),
                checkpoint: Some(&path),
                checkpoint_every: 1,
                resume: false,
            },
        )
        .unwrap();
        assert!(!interrupted.is_complete());
        assert!(path.exists());

        // Resume with a different thread count: byte-identical result.
        let resumed = ReachSketches::build_resumable(
            &pg,
            SketchConfig { threads: 4, ..cfg },
            &BuildOpts {
                deadline: &Deadline::unlimited(),
                checkpoint: Some(&path),
                checkpoint_every: 1,
                resume: true,
            },
        )
        .unwrap();
        assert!(resumed.is_complete());
        assert_eq!(resumed.value_ref().fingerprint(), full.fingerprint());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_rejects_mismatched_runs() {
        let dir = std::env::temp_dir().join(format!("soi-sketch-pin-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sketch.ckpt");
        let pg = test_graph(10);
        let cfg = config(32, 8, 2, 1);
        let _ = ReachSketches::build_resumable(
            &pg,
            cfg,
            &BuildOpts {
                deadline: &Deadline::ticks(1),
                checkpoint: Some(&path),
                checkpoint_every: 1,
                resume: false,
            },
        )
        .unwrap();
        // Different k: the config fingerprint must reject the resume.
        let err = ReachSketches::build_resumable(
            &pg,
            SketchConfig { k: 9, ..cfg },
            &BuildOpts {
                deadline: &Deadline::unlimited(),
                checkpoint: Some(&path),
                checkpoint_every: 1,
                resume: true,
            },
        )
        .unwrap_err();
        assert!(matches!(err, SoiError::CkptMismatch { .. }), "{err:?}");
        // Different graph: rejected too.
        let err = ReachSketches::build_resumable(
            &test_graph(11),
            cfg,
            &BuildOpts {
                deadline: &Deadline::unlimited(),
                checkpoint: Some(&path),
                checkpoint_every: 1,
                resume: true,
            },
        )
        .unwrap_err();
        assert!(matches!(err, SoiError::CkptMismatch { .. }), "{err:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_load_round_trips() {
        let dir = std::env::temp_dir().join(format!("soi-sketch-save-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sketch.soisk");
        let pg = test_graph(12);
        let sk = ReachSketches::build(&pg, config(16, 8, 4, 1));
        sk.save(&path).unwrap();
        let loaded = ReachSketches::load(&path).unwrap();
        assert_eq!(loaded.graph_fingerprint(), pg.fingerprint());
        assert_eq!(loaded.fingerprint(), sk.fingerprint());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn build_failpoint_surfaces_as_typed_fault() {
        let _g = soi_util::failpoint::test_guard();
        soi_util::failpoint::install("sketch.build.block=error").unwrap();
        let pg = test_graph(13);
        let err = ReachSketches::build_resumable(
            &pg,
            config(16, 8, 1, 1),
            &BuildOpts {
                deadline: &Deadline::unlimited(),
                checkpoint: None,
                checkpoint_every: 1,
                resume: false,
            },
        )
        .unwrap_err();
        soi_util::failpoint::clear();
        assert!(matches!(err, SoiError::Fault { .. }), "{err:?}");
    }

    #[test]
    fn cache_key_tracks_content_inputs_only() {
        let pg = test_graph(1);
        let cfg = config(8, 16, 5, 1);
        let base = ReachSketches::cache_key(&pg, &cfg);
        assert_eq!(
            base,
            ReachSketches::cache_key(&pg, &SketchConfig { threads: 4, ..cfg })
        );
        assert_ne!(
            base,
            ReachSketches::cache_key(&pg, &SketchConfig { k: 17, ..cfg })
        );
        assert_ne!(
            base,
            ReachSketches::cache_key(
                &pg,
                &SketchConfig {
                    num_worlds: 9,
                    ..cfg
                }
            )
        );
        assert_ne!(
            base,
            ReachSketches::cache_key(&pg, &SketchConfig { seed: 6, ..cfg })
        );
        assert_ne!(base, ReachSketches::cache_key(&test_graph(2), &cfg));
    }

    #[test]
    fn ranks_are_deterministic_and_pairwise_distinct() {
        assert_eq!(pair_rank(1, 2, 3), pair_rank(1, 2, 3));
        let mut seen = std::collections::HashSet::new();
        for world in 0..8 {
            for node in 0..256u32 {
                assert!(seen.insert(pair_rank(42, world, node)), "rank collision");
            }
        }
    }
}
