//! Protocol-robustness tests against a real in-process TCP daemon:
//! every malformed input gets a distinct typed error, no input kills a
//! worker or the accept loop, deadlines produce well-formed partials,
//! admission control rejects deterministically, and shutdown drains.

use soi_graph::{gen, ProbGraph};
use soi_server::{json, EngineConfig, QueryConfig, Request, ServeConfig, ServerEngine};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;

/// A daemon running on an ephemeral port, torn down by `stop()`.
struct TestDaemon {
    port: u16,
    thread: JoinHandle<()>,
}

/// `out` writer that forwards the `listening on HOST:PORT` announcement
/// through a channel so the test learns the ephemeral port. Buffers
/// until the newline: `write_fmt` may deliver the line in fragments.
struct Announce {
    buf: String,
    tx: mpsc::Sender<u16>,
}

impl Write for Announce {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.buf.push_str(&String::from_utf8_lossy(buf));
        if self.buf.contains('\n') {
            if let Some(port) = self
                .buf
                .trim()
                .rsplit(':')
                .next()
                .and_then(|p| p.parse::<u16>().ok())
            {
                let _ = self.tx.send(port);
            }
            self.buf.clear();
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn start_daemon(config: ServeConfig) -> TestDaemon {
    let pg = ProbGraph::fixed(gen::path(30), 1.0).expect("graph");
    let mut engine = ServerEngine::new(EngineConfig {
        num_worlds: 8,
        seed: 5,
        ..EngineConfig::default()
    });
    engine.add_graph("g", pg);
    let engine = Arc::new(engine);
    let (tx, rx) = mpsc::channel();
    let thread = std::thread::spawn(move || {
        let mut announce = Announce {
            buf: String::new(),
            tx,
        };
        soi_server::run_tcp(engine, &config, &mut announce).expect("daemon run");
    });
    let port = rx.recv().expect("port announcement");
    TestDaemon { port, thread }
}

impl TestDaemon {
    fn send(&self, line: &str) -> String {
        soi_server::send_one("127.0.0.1", self.port, line).expect("round trip")
    }

    fn stop(self) {
        let resp = self.send(r#"{"v":1,"id":999,"type":"shutdown"}"#);
        assert!(resp.contains("\"draining\":true"), "{resp}");
        self.thread.join().expect("daemon thread");
    }
}

/// One persistent client connection with line-at-a-time round trips.
struct Conn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Conn {
    fn open(port: u16) -> Conn {
        let stream = TcpStream::connect(("127.0.0.1", port)).expect("connect");
        let writer = stream.try_clone().expect("clone");
        Conn {
            writer,
            reader: BufReader::new(stream),
        }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").expect("send");
        self.writer.flush().expect("flush");
    }

    fn recv(&mut self) -> String {
        let mut resp = String::new();
        self.reader.read_line(&mut resp).expect("recv");
        resp.trim_end().to_string()
    }

    fn round_trip(&mut self, line: &str) -> String {
        self.send(line);
        self.recv()
    }
}

fn field_u64(resp: &str, key: &str) -> Option<u64> {
    json::parse(resp).ok()?.get(key)?.as_u64()
}

#[test]
fn malformed_inputs_get_distinct_kinds_and_never_kill_the_server() {
    let daemon = start_daemon(ServeConfig::default());
    let mut conn = Conn::open(daemon.port);

    let resp = conn.round_trip("this is { not json");
    assert!(resp.contains("\"kind\":\"malformed-json\""), "{resp}");
    assert!(resp.contains("\"id\":null"), "{resp}");

    let resp = conn.round_trip(r#"{"v":1,"id":2,"type":"launch-missiles"}"#);
    assert!(resp.contains("\"kind\":\"unknown-type\""), "{resp}");

    let resp = conn.round_trip(r#"{"v":3,"id":3,"type":"health"}"#);
    assert!(resp.contains("\"kind\":\"version-mismatch\""), "{resp}");

    let resp =
        conn.round_trip(r#"{"v":1,"id":4,"type":"typical-cascade","graph":"nope","source":0}"#);
    assert!(resp.contains("\"kind\":\"unknown-graph\""), "{resp}");

    let resp =
        conn.round_trip(r#"{"v":1,"id":5,"type":"typical-cascade","graph":"g","source":1000}"#);
    assert!(resp.contains("\"kind\":\"bad-field\""), "{resp}");

    // The same connection still computes after five straight errors.
    let resp = conn.round_trip(r#"{"v":1,"id":6,"type":"typical-cascade","graph":"g","source":0}"#);
    assert!(resp.contains("\"status\":\"ok\""), "{resp}");
    daemon.stop();
}

#[test]
fn oversized_line_is_rejected_without_dropping_the_connection() {
    let daemon = start_daemon(ServeConfig {
        max_line: 256,
        ..ServeConfig::default()
    });
    let mut conn = Conn::open(daemon.port);
    let huge = format!(
        r#"{{"v":1,"id":1,"type":"health","pad":"{}"}}"#,
        "x".repeat(1000)
    );
    let resp = conn.round_trip(&huge);
    assert!(resp.contains("\"kind\":\"oversized-line\""), "{resp}");
    let resp = conn.round_trip(r#"{"v":1,"id":2,"type":"health"}"#);
    assert!(resp.contains("\"ok\":true"), "{resp}");
    daemon.stop();
}

#[test]
fn mid_request_disconnect_is_counted_and_survived() {
    let daemon = start_daemon(ServeConfig::default());
    {
        // Write half a request, then drop the connection.
        let mut stream = TcpStream::connect(("127.0.0.1", daemon.port)).expect("connect");
        stream
            .write_all(br#"{"v":1,"id":7,"type":"typ"#)
            .expect("partial write");
        stream.flush().expect("flush");
    } // closed here, mid-line
      // The daemon keeps serving fresh connections afterwards.
    let resp = daemon.send(r#"{"v":1,"id":8,"type":"health"}"#);
    assert!(resp.contains("\"ok\":true"), "{resp}");
    daemon.stop();
}

#[test]
fn deadline_limited_query_returns_well_formed_partial() {
    let daemon = start_daemon(ServeConfig::default());
    let resp = daemon.send(
        r#"{"v":1,"id":1,"type":"spread-estimate","graph":"g","seeds":[0],"samples":64,"seed":3,"deadline_ticks":8}"#,
    );
    assert!(resp.contains("\"status\":\"partial\""), "{resp}");
    assert!(resp.contains("\"reason\":\"deadline-expired\""), "{resp}");
    assert_eq!(field_u64(&resp, "total"), Some(64), "{resp}");
    let done = field_u64(&resp, "done").expect("done field");
    assert!(done < 64, "{resp}");
    // Same budget, same prefix: byte-identical after masking wall time.
    let again = daemon.send(
        r#"{"v":1,"id":1,"type":"spread-estimate","graph":"g","seeds":[0],"samples":64,"seed":3,"deadline_ticks":8}"#,
    );
    assert_eq!(
        soi_obs::report::mask_wall_clock(&resp),
        soi_obs::report::mask_wall_clock(&again)
    );
    daemon.stop();
}

#[test]
fn queue_overflow_returns_typed_rejection() {
    // One worker, queue capacity one: occupy the worker with a slow
    // query, fill the queue with a second, then watch the third bounce.
    let daemon = start_daemon(ServeConfig {
        workers: 1,
        queue_cap: 1,
        ..ServeConfig::default()
    });
    let slow = r#"{"v":1,"id":100,"type":"spread-estimate","graph":"g","seeds":[0],"samples":3000000,"seed":1}"#;

    let mut occupier = Conn::open(daemon.port);
    occupier.send(slow);
    let mut control = Conn::open(daemon.port);
    // Deterministic sequencing via the inline stats channel: wait until
    // the slow job is actually executing.
    loop {
        let stats = control.round_trip(r#"{"v":1,"id":1,"type":"stats"}"#);
        if field_u64(&stats, "in_flight") == Some(1) {
            break;
        }
        std::thread::yield_now();
    }
    let mut filler = Conn::open(daemon.port);
    filler.send(slow);
    loop {
        let stats = control.round_trip(r#"{"v":1,"id":2,"type":"stats"}"#);
        if field_u64(&stats, "queue_depth") == Some(1) {
            break;
        }
        std::thread::yield_now();
    }
    // Worker busy + queue full: the next compute request must bounce
    // immediately with the typed rejection.
    let mut bouncer = Conn::open(daemon.port);
    let resp = bouncer.round_trip(
        r#"{"v":1,"id":3,"type":"spread-estimate","graph":"g","seeds":[0],"samples":4,"seed":1}"#,
    );
    assert!(resp.contains("\"kind\":\"queue-full\""), "{resp}");
    assert!(resp.contains("\"id\":3"), "{resp}");
    // Control plane stays responsive throughout.
    let resp = control.round_trip(r#"{"v":1,"id":4,"type":"health"}"#);
    assert!(resp.contains("\"ok\":true"), "{resp}");
    // Graceful shutdown drains both slow jobs; their clients get real
    // responses, not resets.
    let shutdown = daemon.send(r#"{"v":1,"id":999,"type":"shutdown"}"#);
    assert!(shutdown.contains("\"draining\":true"), "{shutdown}");
    let drained = occupier.recv();
    assert!(drained.contains("\"status\":\"ok\""), "{drained}");
    let drained = filler.recv();
    assert!(drained.contains("\"status\":\"ok\""), "{drained}");
    daemon.thread.join().expect("daemon thread");
}

#[test]
fn client_batch_is_ordered_and_deterministic_under_masking() {
    let daemon = start_daemon(ServeConfig::default());
    let mut requests = Vec::new();
    for i in 0..30u64 {
        requests.push(match i % 3 {
            0 => format!(
                r#"{{"v":1,"id":{i},"type":"typical-cascade","graph":"g","source":{}}}"#,
                i % 30
            ),
            1 => format!(
                r#"{{"v":1,"id":{i},"type":"spread-estimate","graph":"g","seeds":[{}],"samples":8,"seed":7}}"#,
                i % 30
            ),
            _ => format!(r#"{{"v":1,"id":{i},"type":"health"}}"#),
        });
    }
    let config = QueryConfig {
        port: daemon.port,
        concurrency: 4,
        mask_wall: true,
        ..QueryConfig::default()
    };
    let mut out_a = Vec::new();
    let report = soi_server::run_queries(&requests, &config, &mut out_a).expect("batch a");
    assert_eq!(report.errors, 0);
    assert_eq!(report.lost, 0);
    let mut out_b = Vec::new();
    soi_server::run_queries(&requests, &config, &mut out_b).expect("batch b");
    assert_eq!(
        String::from_utf8_lossy(&out_a),
        String::from_utf8_lossy(&out_b),
        "masked batches must be byte-identical"
    );
    // Responses come back in request order: id i on line i.
    for (i, line) in String::from_utf8_lossy(&out_a).lines().enumerate() {
        assert_eq!(field_u64(line, "id"), Some(i as u64), "{line}");
    }
    daemon.stop();
}

#[test]
fn shutdown_drains_and_closes_idle_connections() {
    let daemon = start_daemon(ServeConfig::default());
    // An idle connection that never sends anything.
    let mut idle = TcpStream::connect(("127.0.0.1", daemon.port)).expect("connect");
    daemon.stop();
    // After drain the server shuts the read side down and exits; the
    // idle client observes EOF rather than a hang.
    let mut buf = Vec::new();
    let n = idle.read_to_end(&mut buf).unwrap_or(0);
    assert_eq!(n, 0, "idle connection sees clean EOF");
}

#[test]
fn infmax_roundtrip_over_tcp() {
    let daemon = start_daemon(ServeConfig::default());
    let resp = daemon.send(r#"{"v":1,"id":1,"type":"infmax-tc","graph":"g","k":2}"#);
    assert!(resp.contains("\"status\":\"ok\""), "{resp}");
    assert!(resp.contains("\"seeds\":["), "{resp}");
    assert!(resp.contains("\"coverage\":["), "{resp}");
    let _ = Request::Health; // keep the re-export exercised
    daemon.stop();
}
