//! Schedule-stress: the mixed-query e2e under 32 seeded schedules.
//!
//! The static `concurrency` lint pass proves lock discipline on paper;
//! this test attacks the same property at runtime. Every failpoint site
//! in the serving pipeline (dispatch, index build, cache insert,
//! response write) doubles as a schedule-perturbation point: arming
//! `soi_util::schedule` with a seed injects yields and micro-sleeps
//! there, pushing the OS scheduler into interleavings an unperturbed
//! run never visits. A correct pipeline produces byte-identical
//! (wall-masked) responses under *every* schedule — any divergence
//! means ordering of concurrent work leaked into an answer.
//!
//! The workload is the same 122-request mix the `serve-e2e` CI job
//! drives through the real binary (typical-cascade + spread-estimate +
//! health per node over 40 nodes, one deadline-limited query, one
//! infmax), here run in-process against [`soi_server::run_tcp`] so the
//! schedule shim can be re-armed per run without respawning a daemon.
//! Debug builds only in effect: release builds compile the failpoint
//! macros — and with them the perturbation hook — to nothing.

use soi_graph::{gen, ProbGraph};
use soi_server::{run_tcp, EngineConfig, QueryConfig, ServeConfig, ServerEngine};
use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Seeded schedules to replay on top of the unperturbed baseline.
const SEEDS: u64 = 32;

/// A `Write` sink the spawning thread can poll for the announce line.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl SharedBuf {
    fn contents(&self) -> String {
        String::from_utf8_lossy(&self.0.lock().unwrap()).into_owned()
    }
}

fn engine() -> ServerEngine {
    let mut rng = soi_util::rng::Xoshiro256pp::seed_from_u64(11);
    let pg = ProbGraph::fixed(gen::gnm(40, 160, &mut rng), 0.15).expect("graph");
    let mut engine = ServerEngine::new(EngineConfig {
        num_worlds: 64,
        seed: 2,
        ..EngineConfig::default()
    });
    engine.add_graph("net", pg);
    engine
}

/// The serve-e2e mixed batch: typical-cascade, spread-estimate, and
/// health per node, one deadline-limited query, one infmax — 122
/// requests over 40 nodes, ids 1..=122.
fn mixed_requests(nodes: usize) -> Vec<String> {
    let mut reqs = Vec::new();
    let mut id = 0u64;
    let mut next = |body: String| {
        id += 1;
        format!("{{\"v\":1,\"id\":{id},{body}}}")
    };
    for source in 0..nodes {
        reqs.push(next(format!(
            "\"type\":\"typical-cascade\",\"graph\":\"net\",\"source\":{source}"
        )));
        reqs.push(next(format!(
            "\"type\":\"spread-estimate\",\"graph\":\"net\",\"seeds\":[{source}],\
             \"samples\":64,\"seed\":7"
        )));
        reqs.push(next("\"type\":\"health\"".to_string()));
    }
    reqs.push(next(
        "\"type\":\"spread-estimate\",\"graph\":\"net\",\"seeds\":[0],\
         \"samples\":64,\"seed\":7,\"deadline_ticks\":16"
            .to_string(),
    ));
    reqs.push(next(
        "\"type\":\"infmax-tc\",\"graph\":\"net\",\"k\":3".to_string(),
    ));
    reqs
}

/// Runs the full batch against the daemon and returns its masked,
/// request-ordered response block.
fn run_batch(requests: &[String], port: u16) -> String {
    let config = QueryConfig {
        port,
        concurrency: 8,
        mask_wall: true,
        retries: 2,
        timeout_ms: 60_000,
        ..QueryConfig::default()
    };
    let mut out = Vec::new();
    let report = soi_server::run_queries(requests, &config, &mut out).expect("batch run");
    assert_eq!(report.lost, 0, "requests lost mid-batch");
    String::from_utf8(out).expect("utf8 responses")
}

#[test]
fn mixed_batch_is_schedule_invariant_across_32_seeds() {
    // One daemon serves every run: arming happens per batch, so a
    // single warm index answers all 33 batches and the test measures
    // schedule sensitivity, not build time.
    let announce = SharedBuf::default();
    let daemon = {
        let engine = Arc::new(engine());
        let mut sink = announce.clone();
        std::thread::spawn(move || {
            let config = ServeConfig {
                port: 0,
                workers: 4,
                queue_cap: 256,
                ..ServeConfig::default()
            };
            run_tcp(engine, &config, &mut sink).expect("daemon run");
        })
    };
    let deadline = Instant::now() + Duration::from_secs(30);
    let port: u16 = loop {
        let text = announce.contents();
        if let Some(line) = text.lines().find(|l| l.starts_with("listening on")) {
            break line
                .rsplit(':')
                .next()
                .and_then(|p| p.trim().parse().ok())
                .unwrap_or_else(|| panic!("bad announce line: {line:?}"));
        }
        assert!(Instant::now() < deadline, "daemon never announced");
        std::thread::sleep(Duration::from_millis(5));
    };

    let requests = mixed_requests(40);
    assert_eq!(requests.len(), 122, "the canonical e2e mix");

    // Unperturbed baseline, plus sanity checks that the workload really
    // exercises the pipeline it claims to (ordering, masking, partial).
    soi_util::schedule::clear();
    let baseline = run_batch(&requests, port);
    let lines: Vec<&str> = baseline.lines().collect();
    assert_eq!(lines.len(), requests.len(), "one response per request");
    for (i, line) in lines.iter().enumerate() {
        assert!(
            line.contains(&format!("\"id\":{}", i + 1)),
            "responses out of order at {i}: {line}"
        );
        assert!(line.contains("\"wall_ns\":0"), "unmasked wall: {line}");
    }
    let partial = lines[lines.len() - 2];
    assert!(
        partial.contains("\"status\":\"partial\"") && partial.contains("\"total\":64"),
        "deadline query not partial: {partial}"
    );

    for seed in 0..SEEDS {
        soi_util::schedule::install(seed);
        let run = run_batch(&requests, port);
        soi_util::schedule::clear();
        assert_eq!(
            run, baseline,
            "masked output diverged under schedule seed {seed}"
        );
    }

    // Graceful drain: the shutdown request is acknowledged and the
    // daemon thread exits cleanly.
    let shutdown = vec![r#"{"v":1,"id":9999,"type":"shutdown"}"#.to_string()];
    let ack = run_batch(&shutdown, port);
    assert!(ack.contains("\"draining\":true"), "no drain ack: {ack}");
    daemon.join().expect("daemon thread panicked");
}
