//! Parse-hardening regressions: hostile request lines — oversized,
//! invalid UTF-8, duplicate keys, unknown fields, non-finite numbers —
//! must each produce a typed `bad-request`-class error and leave the
//! connection serving. Found (invalid UTF-8) and pinned by the
//! differential fuzzer in `soi-verify`.

use soi_graph::{gen, ProbGraph};
use soi_server::{run_stdio, EngineConfig, ServerEngine, DEFAULT_MAX_LINE};
use std::io::BufReader;

fn engine() -> ServerEngine {
    let pg = ProbGraph::fixed(gen::path(8), 0.5).expect("graph");
    let mut engine = ServerEngine::new(EngineConfig {
        num_worlds: 4,
        ..EngineConfig::default()
    });
    engine.add_graph("g", pg);
    engine
}

/// Serves raw bytes (not necessarily UTF-8) through the stdio daemon,
/// which shares `read_line_capped` + `handle_line` with the TCP path.
fn serve_bytes(input: &[u8], max_line: usize) -> Vec<String> {
    let _g = soi_util::failpoint::test_guard();
    let engine = engine();
    let mut reader = BufReader::new(input);
    let mut out = Vec::new();
    run_stdio(&engine, max_line, &mut reader, &mut out).expect("run_stdio");
    String::from_utf8(out)
        .expect("responses are UTF-8")
        .lines()
        .map(str::to_string)
        .collect()
}

const HEALTH: &str = "{\"v\":1,\"id\":99,\"type\":\"health\"}\n";

/// Each case: hostile bytes, the expected error kind, and a message
/// fragment. After every case a health probe must still answer — the
/// daemon responds, it never disconnects or panics.
#[test]
fn hostile_lines_get_typed_errors_and_the_loop_survives() {
    let oversized = format!("{{\"v\":1,\"id\":1,\"pad\":\"{}\"}}\n", "x".repeat(400));
    let cases: Vec<(Vec<u8>, &str, &str)> = vec![
        (oversized.into_bytes(), "oversized-line", "exceeds"),
        (
            b"{\"v\":1,\"id\":2,\xff\xfe}\n".to_vec(),
            "malformed-json",
            "not valid UTF-8",
        ),
        (
            b"{\"v\":1,\"v\":1,\"id\":3,\"type\":\"health\"}\n".to_vec(),
            "malformed-json",
            "duplicate object key",
        ),
        (
            b"{\"v\":1,\"id\":4,\"type\":\"health\",\"bogus\":true}\n".to_vec(),
            "bad-field",
            "unknown field \\\"bogus\\\"",
        ),
        (
            b"{\"v\":1,\"id\":5,\"type\":\"spread-estimate\",\"graph\":\"g\",\"seeds\":[0],\"samples\":1e999}\n"
                .to_vec(),
            "malformed-json",
            "non-finite",
        ),
        (
            b"{\"v\":1,\"id\":6,\"type\":\"typical-cascade\",\"graph\":\"g\",\"source\":0,\"dedline_ticks\":4}\n"
                .to_vec(),
            "bad-field",
            "dedline_ticks",
        ),
    ];
    for (bytes, kind, fragment) in cases {
        let mut input = bytes.clone();
        input.extend_from_slice(HEALTH.as_bytes());
        let lines = serve_bytes(&input, 256);
        assert_eq!(lines.len(), 2, "{}", lines.join("\n"));
        assert!(
            lines[0].contains(&format!("\"kind\":\"{kind}\"")),
            "want {kind} for {:?}, got {}",
            String::from_utf8_lossy(&bytes),
            lines[0]
        );
        assert!(
            lines[0].contains(fragment),
            "{fragment} not in {}",
            lines[0]
        );
        assert!(
            lines[1].contains("\"ok\":true"),
            "daemon must keep serving after {kind}: {}",
            lines[1]
        );
    }
}

/// Invalid UTF-8 must answer with a null id (the line never parsed far
/// enough to recover one) and never be lossily decoded into a
/// different well-formed request.
#[test]
fn invalid_utf8_is_not_lossily_decoded() {
    // 0xFF 0xFE inside what would otherwise decode (with replacement
    // characters) as an unknown-type request.
    let mut input = b"{\"v\":1,\"id\":7,\"type\":\"\xff\xfe\"}\n".to_vec();
    input.extend_from_slice(HEALTH.as_bytes());
    let lines = serve_bytes(&input, DEFAULT_MAX_LINE);
    assert_eq!(lines.len(), 2);
    assert!(lines[0].contains("\"id\":null"), "{}", lines[0]);
    assert!(
        lines[0].contains("\"kind\":\"malformed-json\""),
        "must not decode to unknown-type: {}",
        lines[0]
    );
    assert!(!lines[0].contains("unknown request type"), "{}", lines[0]);
    assert!(lines[1].contains("\"ok\":true"), "{}", lines[1]);
}

/// NaN and infinity spellings are not JSON and must be malformed-json,
/// not a crash or a silently-absorbed number.
#[test]
fn non_finite_numbers_are_rejected() {
    for bad in [
        "{\"v\":1,\"id\":8,\"type\":\"spread-estimate\",\"graph\":\"g\",\"seeds\":[0],\"samples\":NaN}",
        "{\"v\":1,\"id\":9,\"type\":\"spread-estimate\",\"graph\":\"g\",\"seeds\":[0],\"samples\":-1e999}",
        "{\"v\":1,\"id\":10,\"type\":\"spread-estimate\",\"graph\":\"g\",\"seeds\":[0],\"samples\":Infinity}",
    ] {
        let mut input = bad.as_bytes().to_vec();
        input.push(b'\n');
        input.extend_from_slice(HEALTH.as_bytes());
        let lines = serve_bytes(&input, DEFAULT_MAX_LINE);
        assert_eq!(lines.len(), 2, "{bad}");
        assert!(
            lines[0].contains("\"kind\":\"malformed-json\""),
            "{bad} -> {}",
            lines[0]
        );
        assert!(lines[1].contains("\"ok\":true"));
    }
}
