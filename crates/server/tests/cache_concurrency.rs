//! LRU cache correctness under concurrent access through the worker
//! pool (loom-free: determinism comes from comparing every concurrent
//! answer against a serial baseline, over enough interleavings that a
//! torn publish would be caught).
//!
//! The hazard under test: with `cache_cap: 1` and several graphs served
//! round-robin by parallel workers, every request evicts the index some
//! other worker may still be building or querying. A correct engine
//! publishes an index `Arc` only after the build completes and lets
//! evicted indexes live while referenced, so *every* response must be
//! byte-identical (modulo wall clock) to the one a single-threaded
//! engine produces — a partially built or aliased index would answer
//! differently.

use soi_graph::{gen, ProbGraph};
use soi_server::worker::{Job, WorkerPool};
use soi_server::{json, EngineConfig, Envelope, Request, ServerEngine};
use std::sync::{mpsc, Arc};

fn graph(seed: u64, nodes: usize, edges: usize) -> ProbGraph {
    let mut rng = soi_util::rng::Xoshiro256pp::seed_from_u64(seed);
    ProbGraph::fixed(gen::gnm(nodes, edges, &mut rng), 0.5).expect("graph")
}

fn engine() -> ServerEngine {
    // cache_cap 1: every index build evicts whatever is cached.
    let mut engine = ServerEngine::new(EngineConfig {
        num_worlds: 8,
        seed: 5,
        cache_cap: 1,
        ..EngineConfig::default()
    });
    engine.add_graph("g0", graph(10, 24, 72));
    engine.add_graph("g1", graph(11, 24, 72));
    engine.add_graph("g2", graph(12, 24, 72));
    engine
}

fn request(i: u64) -> Envelope {
    let graph = format!("g{}", i % 3);
    let req = match i % 2 {
        0 => Request::TypicalCascade {
            graph,
            source: (i % 24) as u32,
            deadline_ticks: None,
            degrade: false,
        },
        _ => Request::SpreadEstimate {
            graph,
            seeds: vec![(i % 24) as u32],
            samples: 4,
            seed: 9,
            deadline_ticks: None,
            degrade: false,
            backend: soi_influence::BackendKind::Cascade,
            sketch_k: None,
        },
    };
    Envelope {
        id: i,
        req,
        trace: false,
    }
}

#[test]
fn eviction_during_concurrent_builds_never_serves_a_torn_index() {
    let n: u64 = 48;
    // Serial baseline: one request at a time, fresh engine.
    let baseline_engine = engine();
    let mut expected: Vec<String> = Vec::new();
    for i in 0..n {
        let line = soi_server::worker::execute_job(&baseline_engine, &request(i));
        expected.push(soi_obs::report::mask_wall_clock(&line));
    }

    // Concurrent run: 4 workers race builds and evictions on a shared
    // cache of capacity 1.
    let pool = WorkerPool::start(Arc::new(engine()), 4, 64);
    let handle = pool.handle();
    let (tx, rx) = mpsc::channel();
    for i in 0..n {
        handle.submit(Job::new(request(i), tx.clone()));
    }
    drop(tx);
    pool.shutdown();

    let mut got: Vec<Option<String>> = vec![None; n as usize];
    for line in rx.iter() {
        let id = json::parse(&line)
            .expect("well-formed response")
            .get("id")
            .and_then(json::Value::as_u64)
            .expect("response id");
        assert!(got[id as usize].is_none(), "duplicate response for {id}");
        got[id as usize] = Some(soi_obs::report::mask_wall_clock(&line));
    }
    for (i, slot) in got.iter().enumerate() {
        let line = slot.as_ref().expect("every request answered");
        assert!(line.contains("\"status\":\"ok\""), "{line}");
        assert_eq!(line, &expected[i], "request {i} diverged from serial");
    }
}
