//! The versioned line protocol: request parsing and response encoding.
//!
//! Every request and response is one line of JSON. Requests carry a
//! protocol version `v`, a client-chosen `id` echoed back verbatim, and
//! a `type` selecting the operation. Responses carry `status`
//! (`ok` | `partial` | `error`); wall-clock time appears only in the
//! `wall_ns` field so deterministic-output tests can mask it with
//! `soi_obs::report::mask_wall_clock`.
//!
//! Violations map onto [`ProtoErrorKind`] — a distinct, stable wire code
//! per failure class — so clients can react without parsing free-form
//! messages. See `docs/SERVING.md` for the full message catalogue.

use crate::json::{self, Value};
use soi_graph::NodeId;
use soi_influence::BackendKind;
use soi_util::runtime::StopReason;
use soi_util::{ProtoErrorKind, SoiError};

/// The protocol version this build speaks. Requests must carry
/// `"v":1`; anything else is rejected with `version-mismatch`.
pub const PROTOCOL_VERSION: u64 = 1;

/// Default cap on request-line length (bytes, newline excluded).
pub const DEFAULT_MAX_LINE: usize = 64 * 1024;

/// A parsed request: the echoed `id` plus the operation.
#[derive(Clone, Debug, PartialEq)]
pub struct Envelope {
    /// Client-chosen request id, echoed in the response.
    pub id: u64,
    /// The requested operation.
    pub req: Request,
    /// Opt-in phase tracing: when set on a compute request, the success
    /// response carries the request's phase timeline (`"trace":[…]`).
    pub trace: bool,
}

/// The operations the server understands.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness probe; always answered inline.
    Health,
    /// Server statistics snapshot; always answered inline.
    Stats,
    /// Graceful shutdown: stop accepting, drain in-flight, exit.
    Shutdown,
    /// Router control: move a graph's ownership to another shard. The
    /// single-daemon server answers it with a typed error — only the
    /// router holds a shard map.
    Rebalance {
        /// Name of the graph to move.
        graph: String,
        /// Target shard index within the router's shard list.
        shard: usize,
    },
    /// The typical cascade (sphere of influence) of one source node.
    TypicalCascade {
        /// Name of a loaded graph.
        graph: String,
        /// Source node.
        source: NodeId,
        /// Optional tick budget for the median fit.
        deadline_ticks: Option<u64>,
        /// Opt-in graceful degradation (serve a stale index rather than
        /// fail when a fresh build is impossible).
        degrade: bool,
    },
    /// Monte-Carlo spread estimate of a seed set.
    SpreadEstimate {
        /// Name of a loaded graph.
        graph: String,
        /// Seed set (all active at time 0).
        seeds: Vec<NodeId>,
        /// Number of Monte-Carlo samples.
        samples: usize,
        /// RNG seed for the estimate.
        seed: u64,
        /// Optional tick budget (one tick per sample).
        deadline_ticks: Option<u64>,
        /// Opt-in graceful degradation (answer with a reduced sample
        /// count under deadline pressure rather than go partial).
        degrade: bool,
        /// Spread-oracle backend (`"backend"` field; default cascade —
        /// Monte-Carlo sampling; `"sketch"` answers from warm bottom-k
        /// sketches, ignoring `samples`/`seed`).
        backend: BackendKind,
        /// Sketch size `k` override for the sketch backend (`None` =
        /// the server's `--sketch-k` default).
        sketch_k: Option<usize>,
    },
    /// `InfMax_TC`: greedy max-cover seed selection over spheres.
    InfmaxTc {
        /// Name of a loaded graph.
        graph: String,
        /// Number of seeds to select.
        k: usize,
        /// Optional tick budget (one tick per node solved).
        deadline_ticks: Option<u64>,
        /// Opt-in graceful degradation (serve a stale index rather than
        /// fail when a fresh build is impossible).
        degrade: bool,
        /// Spread-oracle backend (default cascade — `InfMax_TC` max
        /// cover; `"sketch"` runs SKIM-style greedy over the sketches).
        backend: BackendKind,
        /// Sketch size `k` override for the sketch backend.
        sketch_k: Option<usize>,
    },
}

impl Request {
    /// Control requests are answered by the connection thread itself and
    /// never enter the compute queue, so `health`/`stats`/`shutdown`
    /// stay responsive while workers are saturated.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Request::Health | Request::Stats | Request::Shutdown | Request::Rebalance { .. }
        )
    }

    /// The graph a compute request targets (`None` for controls). The
    /// router's shard map keys off this.
    pub fn graph(&self) -> Option<&str> {
        match self {
            Request::TypicalCascade { graph, .. }
            | Request::SpreadEstimate { graph, .. }
            | Request::InfmaxTc { graph, .. } => Some(graph),
            _ => None,
        }
    }

    /// The wire name of this request's type.
    pub fn type_name(&self) -> &'static str {
        match self {
            Request::Health => "health",
            Request::Stats => "stats",
            Request::Shutdown => "shutdown",
            Request::Rebalance { .. } => "rebalance",
            Request::TypicalCascade { .. } => "typical-cascade",
            Request::SpreadEstimate { .. } => "spread-estimate",
            Request::InfmaxTc { .. } => "infmax-tc",
        }
    }
}

fn proto(kind: ProtoErrorKind, message: impl Into<String>) -> SoiError {
    SoiError::protocol(kind, message)
}

fn req_str(obj: &Value, key: &str) -> Result<String, SoiError> {
    obj.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| {
            proto(
                ProtoErrorKind::BadField,
                format!("missing string field {key:?}"),
            )
        })
}

fn req_u64(obj: &Value, key: &str) -> Result<u64, SoiError> {
    obj.get(key).and_then(Value::as_u64).ok_or_else(|| {
        proto(
            ProtoErrorKind::BadField,
            format!("missing non-negative integer field {key:?}"),
        )
    })
}

fn opt_u64(obj: &Value, key: &str) -> Result<Option<u64>, SoiError> {
    match obj.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or_else(|| {
            proto(
                ProtoErrorKind::BadField,
                format!("field {key:?} must be a non-negative integer"),
            )
        }),
    }
}

fn opt_bool(obj: &Value, key: &str) -> Result<bool, SoiError> {
    match obj.get(key) {
        None | Some(Value::Null) => Ok(false),
        Some(v) => v.as_bool().ok_or_else(|| {
            proto(
                ProtoErrorKind::BadField,
                format!("field {key:?} must be a boolean"),
            )
        }),
    }
}

fn opt_str(obj: &Value, key: &str) -> Result<Option<String>, SoiError> {
    match obj.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => v.as_str().map(|s| Some(s.to_string())).ok_or_else(|| {
            proto(
                ProtoErrorKind::BadField,
                format!("field {key:?} must be a string"),
            )
        }),
    }
}

/// Parses the optional `backend` / `sketch_k` pair shared by the compute
/// requests that dispatch between spread-oracle backends.
fn opt_backend(obj: &Value) -> Result<(BackendKind, Option<usize>), SoiError> {
    let backend = match opt_str(obj, "backend")? {
        None => BackendKind::default(),
        Some(name) => BackendKind::parse(&name).ok_or_else(|| {
            proto(
                ProtoErrorKind::BadField,
                format!("unknown backend {name:?} (cascade|sketch)"),
            )
        })?,
    };
    let sketch_k = match opt_u64(obj, "sketch_k")? {
        None => None,
        Some(0) => return Err(proto(ProtoErrorKind::BadField, "sketch_k must be >= 1")),
        Some(k) => Some(k as usize),
    };
    Ok((backend, sketch_k))
}

fn req_nodes(obj: &Value, key: &str) -> Result<Vec<NodeId>, SoiError> {
    let arr = obj.get(key).and_then(Value::as_arr).ok_or_else(|| {
        proto(
            ProtoErrorKind::BadField,
            format!("missing array field {key:?}"),
        )
    })?;
    arr.iter()
        .map(|v| {
            v.as_u64()
                .filter(|&n| n <= u64::from(u32::MAX))
                .map(|n| n as NodeId)
                .ok_or_else(|| {
                    proto(
                        ProtoErrorKind::BadField,
                        format!("field {key:?} must hold node ids"),
                    )
                })
        })
        .collect()
}

/// Envelope fields every request may carry.
const COMMON_KEYS: [&str; 4] = ["v", "id", "type", "trace"];

/// Rejects fields outside the request type's schema. A misspelled
/// field silently ignored would make the request mean something other
/// than the client intended (e.g. `dedline_ticks` running unbounded),
/// so unknown keys are a typed `bad-field` naming the offender.
fn check_known_fields(obj: &Value, type_name: &str) -> Result<(), SoiError> {
    let extra: &[&str] = match type_name {
        "health" | "stats" | "shutdown" => &[],
        "rebalance" => &["graph", "shard"],
        "typical-cascade" => &["graph", "source", "deadline_ticks", "degrade"],
        "spread-estimate" => &[
            "graph",
            "seeds",
            "samples",
            "seed",
            "deadline_ticks",
            "degrade",
            "backend",
            "sketch_k",
        ],
        "infmax-tc" => &[
            "graph",
            "k",
            "deadline_ticks",
            "degrade",
            "backend",
            "sketch_k",
        ],
        // Unknown types get their own typed error in the dispatch below.
        _ => return Ok(()),
    };
    if let Some(map) = obj.as_obj() {
        for key in map.keys() {
            if !COMMON_KEYS.contains(&key.as_str()) && !extra.contains(&key.as_str()) {
                return Err(proto(
                    ProtoErrorKind::BadField,
                    format!("unknown field {key:?} for request type {type_name:?}"),
                ));
            }
        }
    }
    Ok(())
}

/// Parses one request line. Errors carry the [`ProtoErrorKind`] the
/// response should report.
pub fn parse_request(line: &str) -> Result<Envelope, SoiError> {
    let doc = json::parse(line).map_err(|e| proto(ProtoErrorKind::MalformedJson, e))?;
    if doc.as_obj().is_none() {
        return Err(proto(
            ProtoErrorKind::MalformedJson,
            "request is not an object",
        ));
    }
    let version = req_u64(&doc, "v").map_err(|_| {
        proto(
            ProtoErrorKind::VersionMismatch,
            "missing protocol version field v",
        )
    })?;
    if version != PROTOCOL_VERSION {
        return Err(proto(
            ProtoErrorKind::VersionMismatch,
            format!("protocol version {version} (this server speaks {PROTOCOL_VERSION})"),
        ));
    }
    let id = req_u64(&doc, "id")?;
    let type_name = req_str(&doc, "type")
        .map_err(|_| proto(ProtoErrorKind::UnknownType, "missing type field"))?;
    check_known_fields(&doc, &type_name)?;
    let req = match type_name.as_str() {
        "health" => Request::Health,
        "stats" => Request::Stats,
        "shutdown" => Request::Shutdown,
        "rebalance" => Request::Rebalance {
            graph: req_str(&doc, "graph")?,
            shard: req_u64(&doc, "shard")? as usize,
        },
        "typical-cascade" => Request::TypicalCascade {
            graph: req_str(&doc, "graph")?,
            source: req_u64(&doc, "source")?
                .try_into()
                .map_err(|_| proto(ProtoErrorKind::BadField, "source exceeds u32"))?,
            deadline_ticks: opt_u64(&doc, "deadline_ticks")?,
            degrade: opt_bool(&doc, "degrade")?,
        },
        "spread-estimate" => {
            let samples = req_u64(&doc, "samples")? as usize;
            if samples == 0 {
                return Err(proto(ProtoErrorKind::BadField, "samples must be >= 1"));
            }
            let (backend, sketch_k) = opt_backend(&doc)?;
            Request::SpreadEstimate {
                graph: req_str(&doc, "graph")?,
                seeds: req_nodes(&doc, "seeds")?,
                samples,
                seed: opt_u64(&doc, "seed")?.unwrap_or(0),
                deadline_ticks: opt_u64(&doc, "deadline_ticks")?,
                degrade: opt_bool(&doc, "degrade")?,
                backend,
                sketch_k,
            }
        }
        "infmax-tc" => {
            let k = req_u64(&doc, "k")? as usize;
            if k == 0 {
                return Err(proto(ProtoErrorKind::BadField, "k must be >= 1"));
            }
            let (backend, sketch_k) = opt_backend(&doc)?;
            Request::InfmaxTc {
                graph: req_str(&doc, "graph")?,
                k,
                deadline_ticks: opt_u64(&doc, "deadline_ticks")?,
                degrade: opt_bool(&doc, "degrade")?,
                backend,
                sketch_k,
            }
        }
        other => {
            return Err(proto(
                ProtoErrorKind::UnknownType,
                format!("unknown request type {other:?}"),
            ))
        }
    };
    let trace = opt_bool(&doc, "trace")?;
    Ok(Envelope { id, req, trace })
}

/// Encodes a complete success response. `payload` is a pre-encoded JSON
/// fragment (`"key":value,...`) or empty.
pub fn encode_ok(id: u64, payload: &str, wall_ns: u64) -> String {
    if payload.is_empty() {
        format!("{{\"v\":{PROTOCOL_VERSION},\"id\":{id},\"status\":\"ok\",\"wall_ns\":{wall_ns}}}")
    } else {
        format!(
            "{{\"v\":{PROTOCOL_VERSION},\"id\":{id},\"status\":\"ok\",{payload},\"wall_ns\":{wall_ns}}}"
        )
    }
}

/// Encodes a partial (deadline-limited) response: the payload covers the
/// completed prefix of work, `done`/`total` say how much that was.
pub fn encode_partial(
    id: u64,
    payload: &str,
    done: u64,
    total: u64,
    reason: StopReason,
    wall_ns: u64,
) -> String {
    let reason = match reason {
        StopReason::DeadlineExpired => "deadline-expired",
        StopReason::Cancelled => "cancelled",
    };
    format!(
        "{{\"v\":{PROTOCOL_VERSION},\"id\":{id},\"status\":\"partial\",\"reason\":\"{reason}\",\
         \"done\":{done},\"total\":{total},{payload},\"wall_ns\":{wall_ns}}}"
    )
}

/// Encodes an error response. `id` is `None` when the request never
/// parsed far enough to recover one (encoded as `"id":null`).
pub fn encode_error(id: Option<u64>, error: &SoiError) -> String {
    let (kind, message) = match error {
        SoiError::Protocol { kind, message } => (kind.code(), message.clone()),
        // Injected faults surface as retryable server-side failures, not
        // as a client mistake.
        fault @ SoiError::Fault { .. } => (ProtoErrorKind::Internal.code(), fault.to_string()),
        other => (ProtoErrorKind::BadField.code(), other.to_string()),
    };
    let id = id.map_or_else(|| "null".to_string(), |id| id.to_string());
    format!(
        "{{\"v\":{PROTOCOL_VERSION},\"id\":{id},\"status\":\"error\",\"error\":{{\"kind\":\"{kind}\",\"message\":\"{}\"}}}}",
        json::escape(&message)
    )
}

/// Checks the `v` field of a received response line against
/// [`PROTOCOL_VERSION`]. `Ok(())` when the versions agree. A response
/// that parses as JSON but carries a different (or no) version is
/// **protocol skew**: the error is a typed `protocol-mismatch` naming
/// both versions, so a client talking to a newer/older daemon gets a
/// diagnosis instead of a generic parse failure. Lines that are not
/// JSON objects are left to the caller's normal error handling — a
/// garbled line is corruption, not skew.
pub fn check_response_version(line: &str) -> Result<(), SoiError> {
    let Ok(doc) = json::parse(line) else {
        return Ok(());
    };
    if doc.as_obj().is_none() {
        return Ok(());
    }
    match doc.get("v").and_then(Value::as_u64) {
        Some(v) if v == PROTOCOL_VERSION => Ok(()),
        Some(v) => Err(proto(
            ProtoErrorKind::ProtocolMismatch,
            format!("peer speaks protocol version {v} (this side speaks {PROTOCOL_VERSION})"),
        )),
        None => Err(proto(
            ProtoErrorKind::ProtocolMismatch,
            format!("peer response has no protocol version (this side speaks {PROTOCOL_VERSION})"),
        )),
    }
}

/// Encodes the structured `queue-full` rejection: the generic error
/// shape plus load-shedding detail — the queue depth observed at
/// rejection and a deterministic retry hint
/// ([`soi_util::backoff::retry_after_ticks`]). v1-compatible: only
/// fields are added, the `kind`/`message` contract is unchanged.
pub fn encode_queue_full(id: u64, queue_depth: usize, retry_after_ticks: u64) -> String {
    format!(
        "{{\"v\":{PROTOCOL_VERSION},\"id\":{id},\"status\":\"error\",\"error\":{{\"kind\":\"queue-full\",\
         \"message\":\"request queue is full; retry later\",\"queue_depth\":{queue_depth},\
         \"retry_after_ticks\":{retry_after_ticks}}}}}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kind_of(err: SoiError) -> ProtoErrorKind {
        match err {
            SoiError::Protocol { kind, .. } => kind,
            other => panic!("not a protocol error: {other}"),
        }
    }

    #[test]
    fn parses_every_request_type() {
        let e = parse_request(r#"{"v":1,"id":1,"type":"health"}"#).expect("health");
        assert_eq!(e.req, Request::Health);
        assert!(e.req.is_control());
        let e = parse_request(r#"{"v":1,"id":2,"type":"typical-cascade","graph":"g","source":5}"#)
            .expect("tc");
        assert_eq!(e.id, 2);
        assert!(!e.req.is_control());
        assert_eq!(e.req.type_name(), "typical-cascade");
        let e = parse_request(
            r#"{"v":1,"id":3,"type":"spread-estimate","graph":"g","seeds":[0,1],"samples":8,"seed":9,"deadline_ticks":4}"#,
        )
        .expect("spread");
        assert_eq!(
            e.req,
            Request::SpreadEstimate {
                graph: "g".into(),
                seeds: vec![0, 1],
                samples: 8,
                seed: 9,
                deadline_ticks: Some(4),
                degrade: false,
                backend: BackendKind::Cascade,
                sketch_k: None,
            }
        );
        let e = parse_request(r#"{"v":1,"id":4,"type":"infmax-tc","graph":"g","k":3}"#)
            .expect("infmax");
        assert_eq!(e.req.type_name(), "infmax-tc");
    }

    #[test]
    fn degrade_field_is_optional_and_boolean() {
        let e = parse_request(
            r#"{"v":1,"id":5,"type":"spread-estimate","graph":"g","seeds":[0],"samples":4,"degrade":true}"#,
        )
        .expect("degrade");
        assert!(matches!(
            e.req,
            Request::SpreadEstimate { degrade: true, .. }
        ));
        let e = parse_request(
            r#"{"v":1,"id":6,"type":"typical-cascade","graph":"g","source":0,"degrade":false}"#,
        )
        .expect("explicit false");
        assert!(matches!(
            e.req,
            Request::TypicalCascade { degrade: false, .. }
        ));
        let k = kind_of(
            parse_request(r#"{"v":1,"id":7,"type":"infmax-tc","graph":"g","k":1,"degrade":1}"#)
                .expect_err("non-boolean degrade"),
        );
        assert_eq!(k, ProtoErrorKind::BadField);
    }

    #[test]
    fn backend_field_selects_the_oracle() {
        // Absent: cascade default on both dispatching requests.
        let e = parse_request(
            r#"{"v":1,"id":20,"type":"spread-estimate","graph":"g","seeds":[0],"samples":4}"#,
        )
        .expect("default");
        assert!(matches!(
            e.req,
            Request::SpreadEstimate {
                backend: BackendKind::Cascade,
                sketch_k: None,
                ..
            }
        ));
        // Explicit sketch selection with a k override.
        let e = parse_request(
            r#"{"v":1,"id":21,"type":"infmax-tc","graph":"g","k":2,"backend":"sketch","sketch_k":32}"#,
        )
        .expect("sketch");
        assert!(matches!(
            e.req,
            Request::InfmaxTc {
                backend: BackendKind::Sketch,
                sketch_k: Some(32),
                ..
            }
        ));
        // Unknown backend names and zero k are typed bad-field errors.
        let k = kind_of(
            parse_request(
                r#"{"v":1,"id":22,"type":"spread-estimate","graph":"g","seeds":[0],"samples":4,"backend":"voodoo"}"#,
            )
            .expect_err("unknown backend"),
        );
        assert_eq!(k, ProtoErrorKind::BadField);
        let k = kind_of(
            parse_request(
                r#"{"v":1,"id":23,"type":"infmax-tc","graph":"g","k":2,"backend":"sketch","sketch_k":0}"#,
            )
            .expect_err("zero sketch_k"),
        );
        assert_eq!(k, ProtoErrorKind::BadField);
        let k = kind_of(
            parse_request(r#"{"v":1,"id":24,"type":"infmax-tc","graph":"g","k":2,"backend":7}"#)
                .expect_err("non-string backend"),
        );
        assert_eq!(k, ProtoErrorKind::BadField);
    }

    #[test]
    fn trace_field_is_optional_and_boolean() {
        let e = parse_request(
            r#"{"v":1,"id":8,"type":"typical-cascade","graph":"g","source":0,"trace":true}"#,
        )
        .expect("trace on");
        assert!(e.trace);
        let e = parse_request(r#"{"v":1,"id":9,"type":"health"}"#).expect("default");
        assert!(!e.trace);
        let k = kind_of(
            parse_request(r#"{"v":1,"id":10,"type":"health","trace":"yes"}"#)
                .expect_err("non-boolean trace"),
        );
        assert_eq!(k, ProtoErrorKind::BadField);
    }

    #[test]
    fn violations_map_to_distinct_kinds() {
        let k = kind_of(parse_request("{not json").expect_err("malformed"));
        assert_eq!(k, ProtoErrorKind::MalformedJson);
        let k = kind_of(parse_request(r#"{"v":2,"id":1,"type":"health"}"#).expect_err("version"));
        assert_eq!(k, ProtoErrorKind::VersionMismatch);
        let k = kind_of(parse_request(r#"{"id":1,"type":"health"}"#).expect_err("no version"));
        assert_eq!(k, ProtoErrorKind::VersionMismatch);
        let k = kind_of(parse_request(r#"{"v":1,"id":1,"type":"sigmoid"}"#).expect_err("type"));
        assert_eq!(k, ProtoErrorKind::UnknownType);
        let k = kind_of(
            parse_request(r#"{"v":1,"id":1,"type":"infmax-tc","graph":"g","k":0}"#)
                .expect_err("k=0"),
        );
        assert_eq!(k, ProtoErrorKind::BadField);
        let k = kind_of(
            parse_request(
                r#"{"v":1,"id":1,"type":"spread-estimate","graph":"g","seeds":[-1],"samples":2}"#,
            )
            .expect_err("negative node"),
        );
        assert_eq!(k, ProtoErrorKind::BadField);
    }

    #[test]
    fn unknown_fields_are_typed_bad_field_errors() {
        // A misspelled optional field must not be silently ignored.
        let err = parse_request(
            r#"{"v":1,"id":1,"type":"typical-cascade","graph":"g","source":0,"dedline_ticks":4}"#,
        )
        .expect_err("misspelled field");
        let SoiError::Protocol { kind, message } = &err else {
            panic!("not protocol: {err}");
        };
        assert_eq!(*kind, ProtoErrorKind::BadField);
        assert!(message.contains("dedline_ticks"), "{message}");
        let k = kind_of(
            parse_request(r#"{"v":1,"id":2,"type":"health","graph":"g"}"#)
                .expect_err("controls take no fields"),
        );
        assert_eq!(k, ProtoErrorKind::BadField);
        // Every schema field is still accepted.
        parse_request(
            r#"{"v":1,"id":3,"type":"spread-estimate","graph":"g","seeds":[0],"samples":4,"seed":1,"deadline_ticks":9,"degrade":true,"backend":"sketch","sketch_k":8,"trace":true}"#,
        )
        .expect("full schema");
    }

    #[test]
    fn responses_have_stable_shape() {
        assert_eq!(
            encode_ok(7, "\"spread\":2.5", 981),
            "{\"v\":1,\"id\":7,\"status\":\"ok\",\"spread\":2.5,\"wall_ns\":981}"
        );
        assert_eq!(
            encode_partial(7, "\"spread\":1.5", 3, 8, StopReason::DeadlineExpired, 44),
            "{\"v\":1,\"id\":7,\"status\":\"partial\",\"reason\":\"deadline-expired\",\"done\":3,\"total\":8,\"spread\":1.5,\"wall_ns\":44}"
        );
        let err = SoiError::protocol(ProtoErrorKind::QueueFull, "cap 2 reached");
        assert_eq!(
            encode_error(Some(7), &err),
            "{\"v\":1,\"id\":7,\"status\":\"error\",\"error\":{\"kind\":\"queue-full\",\"message\":\"cap 2 reached\"}}"
        );
        assert!(encode_error(None, &err).contains("\"id\":null"));
    }

    #[test]
    fn queue_full_rejection_is_structured() {
        let line = encode_queue_full(3, 8, 32);
        assert_eq!(
            line,
            "{\"v\":1,\"id\":3,\"status\":\"error\",\"error\":{\"kind\":\"queue-full\",\
             \"message\":\"request queue is full; retry later\",\"queue_depth\":8,\
             \"retry_after_ticks\":32}}"
        );
        // The added fields are machine-readable through the client's
        // own parser (v1 compatibility: shape extended, not changed).
        let doc = json::parse(&line).expect("parse");
        let err = doc.get("error").expect("error object");
        assert_eq!(err.get("queue_depth").and_then(Value::as_u64), Some(8));
        assert_eq!(
            err.get("retry_after_ticks").and_then(Value::as_u64),
            Some(32)
        );
    }

    #[test]
    fn rebalance_is_a_control_request() {
        let e = parse_request(r#"{"v":1,"id":11,"type":"rebalance","graph":"net","shard":2}"#)
            .expect("rebalance");
        assert!(e.req.is_control());
        assert_eq!(e.req.type_name(), "rebalance");
        assert_eq!(
            e.req,
            Request::Rebalance {
                graph: "net".into(),
                shard: 2,
            }
        );
        let k = kind_of(
            parse_request(r#"{"v":1,"id":12,"type":"rebalance","graph":"net"}"#)
                .expect_err("missing shard"),
        );
        assert_eq!(k, ProtoErrorKind::BadField);
    }

    #[test]
    fn response_version_check_diagnoses_skew() {
        assert!(check_response_version(&encode_ok(1, "", 5)).is_ok());
        let err = SoiError::protocol(ProtoErrorKind::QueueFull, "m");
        assert!(check_response_version(&encode_error(Some(1), &err)).is_ok());
        // Wrong version: typed mismatch naming both versions.
        let skew =
            check_response_version(r#"{"v":2,"id":1,"status":"ok"}"#).expect_err("version 2");
        let SoiError::Protocol { kind, message } = &skew else {
            panic!("not protocol: {skew}");
        };
        assert_eq!(*kind, ProtoErrorKind::ProtocolMismatch);
        assert!(
            message.contains("version 2") && message.contains('1'),
            "{message}"
        );
        // JSON object with no version at all: also skew.
        let skew = check_response_version(r#"{"id":1,"status":"ok"}"#).expect_err("no v");
        assert!(matches!(
            skew,
            SoiError::Protocol {
                kind: ProtoErrorKind::ProtocolMismatch,
                ..
            }
        ));
        // Garbage is not skew — normal error handling applies.
        assert!(check_response_version("not json at all").is_ok());
        assert!(check_response_version("[1,2,3]").is_ok());
    }

    #[test]
    fn injected_faults_encode_as_internal_error() {
        let err = SoiError::Fault {
            site: "server.index.build".into(),
        };
        let line = encode_error(Some(4), &err);
        assert!(line.contains("\"kind\":\"internal-error\""), "{line}");
        assert!(line.contains("server.index.build"), "{line}");
    }

    #[test]
    fn masked_ok_responses_are_deterministic() {
        let a = soi_obs::report::mask_wall_clock(&encode_ok(1, "\"spread\":2.5", 12345));
        let b = soi_obs::report::mask_wall_clock(&encode_ok(1, "\"spread\":2.5", 99999));
        assert_eq!(a, b);
        assert!(a.ends_with("\"wall_ns\":0}"));
    }
}
