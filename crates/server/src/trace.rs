//! Request phase tracing and the slow-query log.
//!
//! Every compute request accumulates a [`PhaseTrace`]: an ordered
//! timeline of `parse → queue_wait → cache → compute → serialize`
//! phases. Each phase carries two costs:
//!
//! * **`ticks`** — a deterministic work proxy (request-line bytes for
//!   `parse`, `num_worlds` for a cold `cache` build, the sample/seed
//!   budget for `compute`, payload bytes for `serialize`; `queue_wait`
//!   is always 0 ticks). Two same-seed runs of the same request mix
//!   produce identical tick timelines.
//! * **`wall_ns`** — measured wall clock, quarantined in a
//!   `wall_`-prefixed field so `mask_wall_clock` and the golden e2e
//!   tests can zero it mechanically.
//!
//! Clients opt into receiving the timeline by setting `"trace":true` on
//! a compute request; the response then carries a `trace` array. The
//! daemon can additionally be started with `--slow-query-ticks N
//! --slow-query-log PATH`, making [`SlowLog`] append one JSONL line per
//! request whose total tick cost reaches the threshold — the
//! after-the-fact answer to "what was that one slow request doing".
//! The `server.request.slow` failpoint forces the next request to be
//! logged regardless of cost, which is how the unit tests pin the
//! format without depending on workload size.

use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// One phase of a request's lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Phase {
    /// Phase name (`parse`, `queue_wait`, `cache`, `compute`,
    /// `serialize`).
    pub name: &'static str,
    /// Deterministic work proxy for this phase.
    pub ticks: u64,
    /// Measured wall clock (nanoseconds).
    pub wall_ns: u64,
}

/// The ordered phase timeline of one request.
#[derive(Clone, Debug, Default)]
pub struct PhaseTrace {
    phases: Vec<Phase>,
}

impl PhaseTrace {
    /// An empty timeline.
    pub fn new() -> PhaseTrace {
        PhaseTrace { phases: Vec::new() }
    }

    /// Appends one phase (phases are recorded in lifecycle order).
    pub fn record(&mut self, name: &'static str, ticks: u64, wall_ns: u64) {
        self.phases.push(Phase {
            name,
            ticks,
            wall_ns,
        });
    }

    /// The recorded phases, in order.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Total deterministic tick cost across phases.
    pub fn total_ticks(&self) -> u64 {
        self.phases.iter().map(|p| p.ticks).sum()
    }

    /// Total measured wall nanoseconds across phases.
    pub fn total_wall_ns(&self) -> u64 {
        self.phases
            .iter()
            .fold(0u64, |acc, p| acc.saturating_add(p.wall_ns))
    }

    /// The `"trace":[…]` JSON fragment embedded in traced responses and
    /// slow-query log lines. Wall time appears only under `wall_ns`.
    pub fn json_fragment(&self) -> String {
        let phases: Vec<String> = self
            .phases
            .iter()
            .map(|p| {
                format!(
                    "{{\"phase\":\"{}\",\"ticks\":{},\"wall_ns\":{}}}",
                    p.name, p.ticks, p.wall_ns
                )
            })
            .collect();
        format!("\"trace\":[{}]", phases.join(","))
    }
}

/// Nanoseconds elapsed since `start`, saturating at `u64::MAX`.
pub(crate) fn elapsed_ns(start: std::time::Instant) -> u64 {
    soi_obs::perthread::clamp_ns(start.elapsed().as_nanos())
}

/// Whether the forced-slow failpoint is armed for this request (debug
/// builds only; compiled out otherwise, like every failpoint site).
fn forced_slow() -> bool {
    #[cfg(debug_assertions)]
    {
        soi_util::failpoint::trigger("server.request.slow").is_some()
    }
    #[cfg(not(debug_assertions))]
    {
        false
    }
}

/// Threshold-gated JSONL log of slow requests.
///
/// A request is logged when its [`PhaseTrace::total_ticks`] reaches the
/// configured threshold (or the `server.request.slow` failpoint forces
/// it). Each line is self-contained:
///
/// ```json
/// {"type_name":"infmax-tc","id":7,"ticks_total":420,
///  "wall_ns_total":12345,"trace":[{"phase":"parse",...},...]}
/// ```
pub struct SlowLog {
    threshold_ticks: u64,
    sink: Mutex<LogSink>,
}

/// The writer plus optional size-based rotation state, guarded together
/// so a rotation and a write can never interleave.
struct LogSink {
    out: Box<dyn Write + Send>,
    rotation: Option<Rotation>,
}

/// Size-based rotation: when the live file would exceed `max_bytes`,
/// it is renamed to `<path>.old` (replacing any previous `.old`) and a
/// fresh file is started — a long-lived daemon keeps at most two
/// generations of slow-query history on disk.
struct Rotation {
    path: PathBuf,
    max_bytes: u64,
    written: u64,
}

impl LogSink {
    /// Rotates if appending `incoming` bytes would push the live file
    /// past the cap. Rotating an empty file is pointless (and would
    /// loop forever on a single oversized line), so at least one line
    /// always lands in each generation.
    fn rotate_if_needed(&mut self, incoming: u64) {
        let Some(rot) = self.rotation.as_mut() else {
            return;
        };
        if rot.written == 0 || rot.written.saturating_add(incoming) <= rot.max_bytes {
            return;
        }
        let _ = self.out.flush();
        // Close the live file before renaming it out of the way.
        self.out = Box::new(io::sink());
        let old = rot.path.with_extension(match rot.path.extension() {
            Some(ext) => format!("{}.old", ext.to_string_lossy()),
            None => "old".to_string(),
        });
        let renamed = std::fs::rename(&rot.path, &old);
        let reopened = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .truncate(false)
            .open(&rot.path);
        match (renamed, reopened) {
            (Ok(()), Ok(file)) => {
                self.out = Box::new(file);
                rot.written = 0;
                soi_obs::counter_add!("server.slow_query_log_rotations", 1);
            }
            (_, Ok(file)) => {
                // Rename failed: keep appending to the (possibly still
                // oversized) live file rather than lose log lines.
                self.out = Box::new(file);
                soi_obs::counter_add!("server.slow_query_log_errors", 1);
            }
            (_, Err(_)) => {
                soi_obs::counter_add!("server.slow_query_log_errors", 1);
            }
        }
    }
}

impl SlowLog {
    /// A log writing to `out`, triggering at `threshold_ticks` (min 1:
    /// a zero threshold would log every request, which is what tracing
    /// is for).
    pub fn new(threshold_ticks: u64, out: Box<dyn Write + Send>) -> SlowLog {
        SlowLog {
            threshold_ticks: threshold_ticks.max(1),
            sink: Mutex::new(LogSink {
                out,
                rotation: None,
            }),
        }
    }

    /// A log appending to the file at `path` (created if absent). A
    /// non-zero `max_bytes` bounds the live file: when a line would push
    /// it past the cap, the file rotates to `<path>.old` (one `.old`
    /// generation is kept) and `server.slow_query_log_rotations` counts
    /// the event. Zero `max_bytes` means unbounded (the pre-rotation
    /// behavior).
    pub fn to_file(threshold_ticks: u64, path: &Path, max_bytes: u64) -> io::Result<SlowLog> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        let rotation = (max_bytes > 0).then(|| Rotation {
            path: path.to_path_buf(),
            max_bytes,
            // Restarting a daemon resumes the budget where the existing
            // file left off, not from zero.
            written: file.metadata().map(|m| m.len()).unwrap_or(0),
        });
        let log = SlowLog::new(threshold_ticks, Box::new(file));
        log.sink
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .rotation = rotation;
        Ok(log)
    }

    /// The configured threshold.
    pub fn threshold_ticks(&self) -> u64 {
        self.threshold_ticks
    }

    /// Logs the request when its tick cost reaches the threshold (or
    /// the `server.request.slow` failpoint forces it). Write failures
    /// are counted, never propagated — a broken log must not break
    /// serving.
    pub fn maybe_log(&self, id: u64, type_name: &str, trace: &PhaseTrace) {
        let ticks = trace.total_ticks();
        if ticks < self.threshold_ticks && !forced_slow() {
            return;
        }
        soi_obs::counter_add!("server.slow_queries", 1);
        let line = format!(
            "{{\"type_name\":\"{type_name}\",\"id\":{id},\"ticks_total\":{ticks},\
             \"wall_ns_total\":{},{}}}",
            trace.total_wall_ns(),
            trace.json_fragment()
        );
        let mut sink = self
            .sink
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let bytes = line.len() as u64 + 1;
        sink.rotate_if_needed(bytes);
        let write = writeln!(sink.out, "{line}").and_then(|()| sink.out.flush());
        if write.is_err() {
            soi_obs::counter_add!("server.slow_query_log_errors", 1);
        } else if let Some(rot) = sink.rotation.as_mut() {
            rot.written = rot.written.saturating_add(bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn sample_trace() -> PhaseTrace {
        let mut t = PhaseTrace::new();
        t.record("parse", 52, 800);
        t.record("queue_wait", 0, 1_200);
        t.record("cache", 16, 90_000);
        t.record("compute", 64, 410_000);
        t.record("serialize", 31, 500);
        t
    }

    /// A shared Vec-backed writer the tests can read back.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    impl SharedBuf {
        fn text(&self) -> String {
            String::from_utf8_lossy(&self.0.lock().unwrap()).into_owned()
        }
    }

    #[test]
    fn totals_sum_phases_and_fragment_isolates_wall() {
        let t = sample_trace();
        assert_eq!(t.total_ticks(), 52 + 16 + 64 + 31);
        assert_eq!(t.total_wall_ns(), 800 + 1_200 + 90_000 + 410_000 + 500);
        let frag = t.json_fragment();
        assert!(frag.starts_with("\"trace\":[{\"phase\":\"parse\",\"ticks\":52,\"wall_ns\":800}"));
        // Masking the fragment zeroes exactly the wall fields.
        let masked = soi_obs::report::mask_wall_clock(&frag);
        assert!(masked.contains("{\"phase\":\"compute\",\"ticks\":64,\"wall_ns\":0}"));
        assert!(!masked.contains("410000"));
        assert!(masked.contains("\"ticks\":64"), "ticks survive masking");
    }

    #[test]
    fn slow_log_writes_only_at_or_over_threshold() {
        let _g = soi_util::failpoint::test_guard();
        soi_util::failpoint::clear();
        let buf = SharedBuf::default();
        let log = SlowLog::new(200, Box::new(buf.clone()));
        let mut cheap = PhaseTrace::new();
        cheap.record("compute", 10, 999);
        log.maybe_log(1, "typical-cascade", &cheap);
        assert!(buf.text().is_empty(), "below threshold must not log");
        log.maybe_log(2, "infmax-tc", &sample_trace());
        assert!(buf.text().is_empty(), "163 ticks < 200");
        let mut heavy = sample_trace();
        heavy.record("compute", 100, 1);
        log.maybe_log(3, "infmax-tc", &heavy);
        let text = buf.text();
        assert_eq!(text.lines().count(), 1, "{text}");
        assert!(
            text.starts_with("{\"type_name\":\"infmax-tc\",\"id\":3,\"ticks_total\":263,"),
            "{text}"
        );
        assert!(text.contains("\"trace\":[{\"phase\":\"parse\""), "{text}");
    }

    #[test]
    fn rotation_keeps_one_old_generation_under_the_byte_cap() {
        let _g = soi_util::failpoint::test_guard();
        soi_util::failpoint::clear();
        let dir = std::env::temp_dir().join(format!("soi-slowlog-rotate-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("slow.jsonl");
        // Low threshold so every sample trace logs; cap sized to hold
        // roughly two lines per generation.
        let line_len = {
            let mut buf = Vec::new();
            let t = sample_trace();
            let frag = t.json_fragment();
            use std::io::Write as _;
            write!(
                buf,
                "{{\"type_name\":\"infmax-tc\",\"id\":0,\"ticks_total\":{},\"wall_ns_total\":{},{frag}}}",
                t.total_ticks(),
                t.total_wall_ns()
            )
            .unwrap();
            buf.len() as u64 + 1
        };
        let log = SlowLog::to_file(1, &path, line_len * 2 + 1).unwrap();
        for id in 0..5 {
            log.maybe_log(id, "infmax-tc", &sample_trace());
        }
        drop(log);
        let live = std::fs::read_to_string(&path).unwrap();
        let old = std::fs::read_to_string(dir.join("slow.jsonl.old")).unwrap();
        // Two lines per generation: 5 logged → [0,1] rotated out and
        // replaced by [2,3], live holds [4]. Only the last two
        // generations survive — that bound is the point.
        assert_eq!(old.lines().count(), 2, "{old}");
        assert_eq!(live.lines().count(), 1, "{live}");
        assert!(
            old.contains("\"id\":2") && old.contains("\"id\":3"),
            "{old}"
        );
        assert!(live.contains("\"id\":4"), "{live}");
        // …and both files respect the cap.
        assert!(live.len() as u64 <= line_len * 2 + 1, "{}", live.len());
        assert!(old.len() as u64 <= line_len * 2 + 1, "{}", old.len());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn zero_max_bytes_never_rotates() {
        let _g = soi_util::failpoint::test_guard();
        soi_util::failpoint::clear();
        let dir = std::env::temp_dir().join(format!("soi-slowlog-norotate-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("slow.jsonl");
        let log = SlowLog::to_file(1, &path, 0).unwrap();
        for id in 0..8 {
            log.maybe_log(id, "typical-cascade", &sample_trace());
        }
        drop(log);
        let live = std::fs::read_to_string(&path).unwrap();
        assert_eq!(live.lines().count(), 8);
        assert!(!dir.join("slow.jsonl.old").exists(), "no .old generation");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_resumes_byte_budget_from_an_existing_file() {
        let _g = soi_util::failpoint::test_guard();
        soi_util::failpoint::clear();
        let dir = std::env::temp_dir().join(format!("soi-slowlog-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("slow.jsonl");
        // Pre-existing content from a "previous run" nearly fills the cap.
        std::fs::write(&path, "x".repeat(100)).unwrap();
        let log = SlowLog::to_file(1, &path, 110).unwrap();
        log.maybe_log(1, "infmax-tc", &sample_trace());
        drop(log);
        // The pre-existing bytes were counted: the first logged line
        // triggered a rotation instead of blowing past the cap.
        let old = std::fs::read_to_string(dir.join("slow.jsonl.old")).unwrap();
        assert_eq!(old, "x".repeat(100));
        let live = std::fs::read_to_string(&path).unwrap();
        assert_eq!(live.lines().count(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn forced_slow_failpoint_logs_a_fast_request() {
        let _g = soi_util::failpoint::test_guard();
        soi_util::failpoint::install("server.request.slow=error").expect("arm");
        let buf = SharedBuf::default();
        let log = SlowLog::new(1_000_000, Box::new(buf.clone()));
        let mut fast = PhaseTrace::new();
        fast.record("parse", 40, 100);
        fast.record("compute", 1, 200);
        log.maybe_log(9, "typical-cascade", &fast);
        soi_util::failpoint::clear();
        let text = buf.text();
        assert_eq!(text.lines().count(), 1, "forced log line: {text}");
        assert!(text.contains("\"id\":9"), "{text}");
        assert!(text.contains("\"ticks_total\":41"), "{text}");
        // Masked log lines are deterministic.
        let masked = soi_obs::report::mask_wall_clock(&text);
        assert!(masked.contains("\"wall_ns_total\":0,"), "{masked}");
    }
}
