//! The `soi query` client: sends request lines to a running daemon and
//! prints responses in request order.
//!
//! Requests are distributed round-robin over `concurrency` connections,
//! each pipelining its share sequentially (the server answers one
//! request per connection at a time, so write-then-read per request is
//! exact). Responses are reassembled into the original request order
//! before printing, and `mask_wall` zeroes every `wall_*` field so two
//! identical batches print byte-identical output — the hook the e2e
//! determinism test hangs off.
//!
//! The client is resilient by construction:
//!
//! * **Retries with capped deterministic backoff** — connect failures,
//!   mid-batch EOF, and retryable server errors (`queue-full`,
//!   `internal-error`) are retried up to [`QueryConfig::retries`] times
//!   per request, sleeping `min(backoff_ticks << attempt, cap)`
//!   milliseconds between attempts ([`soi_util::backoff::delay_ticks`]);
//!   a `queue-full` response's `retry_after_ticks` hint is honored when
//!   backoff is enabled.
//! * **No hangs, no holes** — when retries are exhausted (or the server
//!   dies for good), every outstanding request in the lane gets a
//!   synthesized, typed `connection-lost` error line instead of the
//!   batch hanging or aborting; a per-request read timeout
//!   ([`QueryConfig::timeout_ms`]) likewise synthesizes a typed
//!   `timeout` line. The batch always prints one line per request, and
//!   the caller learns how many were lost ([`BatchReport::lost`]) so it
//!   can exit with the partial-result code.

use crate::json;
use crate::protocol;
use soi_util::{ProtoErrorKind, SoiError};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

/// Largest single backoff sleep (ticks ≈ milliseconds).
const BACKOFF_CAP_TICKS: u64 = 1024;

/// Client options.
#[derive(Clone, Debug)]
pub struct QueryConfig {
    /// Server host (the daemon binds 127.0.0.1).
    pub host: String,
    /// Server port.
    pub port: u16,
    /// Concurrent connections (min 1).
    pub concurrency: usize,
    /// Zero `wall_*` fields in printed responses.
    pub mask_wall: bool,
    /// Retry attempts per request for connect failures, mid-batch EOF,
    /// and retryable (`queue-full`/`internal-error`) responses.
    pub retries: u32,
    /// Base backoff delay in ticks (1 tick = 1 ms); doubles per attempt,
    /// capped. 0 disables sleeping (retries stay immediate).
    pub backoff_ticks: u64,
    /// Per-request read timeout in milliseconds (0 = wait forever). An
    /// expired timeout yields a typed `timeout` line for that request.
    pub timeout_ms: u64,
}

impl Default for QueryConfig {
    fn default() -> Self {
        QueryConfig {
            host: "127.0.0.1".to_string(),
            port: 0,
            concurrency: 1,
            mask_wall: false,
            retries: 0,
            backoff_ticks: 1,
            timeout_ms: 0,
        }
    }
}

/// What a finished batch looked like, beyond the printed lines.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchReport {
    /// Lines with `status: error` (server-reported and synthesized).
    pub errors: usize,
    /// Requests no compute daemon ever answered: client-synthesized
    /// `connection-lost`/`timeout`/`protocol-mismatch` lines, plus
    /// router-answered `shard-unavailable` lines (the router spoke, but
    /// the request reached no shard). The CLI maps a non-zero count to
    /// the partial-result exit code.
    pub lost: usize,
}

/// Sends one request line over a fresh connection and returns the raw
/// response line (used by tests and one-shot queries).
pub fn send_one(host: &str, port: u16, line: &str) -> Result<String, SoiError> {
    let stream = TcpStream::connect((host, port))
        .map_err(|e| SoiError::io(format!("connect {host}:{port}"), e))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| SoiError::io("clone stream", e))?;
    writeln!(writer, "{line}").map_err(|e| SoiError::io("send request", e))?;
    writer
        .flush()
        .map_err(|e| SoiError::io("send request", e))?;
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    reader
        .read_line(&mut response)
        .map_err(|e| SoiError::io("read response", e))?;
    Ok(response.trim_end().to_string())
}

/// Sends a pre-composed multi-line byte stream over one connection,
/// half-closes the write side, and collects every response line until
/// the server closes the connection. The payload is raw bytes, not
/// text: the differential fuzzer drives the real daemon with
/// deliberately invalid UTF-8 and oversized lines through this path,
/// which a `&str` API could not carry.
pub fn send_stream(host: &str, port: u16, payload: &[u8]) -> Result<Vec<String>, SoiError> {
    let stream = TcpStream::connect((host, port))
        .map_err(|e| SoiError::io(format!("connect {host}:{port}"), e))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| SoiError::io("clone stream", e))?;
    writer
        .write_all(payload)
        .map_err(|e| SoiError::io("send stream", e))?;
    writer.flush().map_err(|e| SoiError::io("send stream", e))?;
    stream
        .shutdown(std::net::Shutdown::Write)
        .map_err(|e| SoiError::io("half-close stream", e))?;
    let reader = BufReader::new(stream);
    let mut lines = Vec::new();
    for line in reader.lines() {
        lines.push(line.map_err(|e| SoiError::io("read response", e))?);
    }
    Ok(lines)
}

/// The client-chosen `id` of a request line, when it parses far enough
/// to carry one (synthesized error lines echo it back).
fn request_id(line: &str) -> Option<u64> {
    json::parse(line).ok()?.get("id")?.as_u64()
}

/// A synthesized error line for a request the server never answered.
fn synth_error(request_line: &str, kind: ProtoErrorKind, message: &str) -> String {
    protocol::encode_error(request_id(request_line), &SoiError::protocol(kind, message))
}

/// When `line` is a retryable error response (`queue-full`,
/// `internal-error`, or `shard-unavailable`), the suggested extra wait
/// in ticks (`queue-full` rejections carry an explicit
/// `retry_after_ticks` hint, re-emitted verbatim by the router;
/// otherwise 0).
fn retryable_after(line: &str) -> Option<u64> {
    let doc = json::parse(line).ok()?;
    if doc.get("status")?.as_str()? != "error" {
        return None;
    }
    let err = doc.get("error")?;
    match err.get("kind")?.as_str()? {
        "queue-full" => Some(
            err.get("retry_after_ticks")
                .and_then(json::Value::as_u64)
                .unwrap_or(0),
        ),
        // A dead shard may come back (replica respawn, rebalance);
        // retrying through the router is how a healing fabric converges.
        "internal-error" | "shard-unavailable" => Some(0),
        _ => None,
    }
}

/// One lane's connection state.
struct Lane {
    host: String,
    port: u16,
    retries: u32,
    backoff_ticks: u64,
    timeout_ms: u64,
    conn: Option<(TcpStream, BufReader<TcpStream>)>,
    /// Set once retries are exhausted: every later request in the lane
    /// is lost without further connection attempts.
    dead: bool,
}

/// How one request in a lane ended.
enum LaneAnswer {
    /// A server response line.
    Server(String),
    /// A synthesized error line (no server response); counts as lost.
    Synthesized(String),
}

impl Lane {
    /// The backoff sleep before retry `attempt` (plus a server-supplied
    /// hint, honored only when backoff is enabled so `--backoff-ticks 0`
    /// keeps tests fast).
    fn nap(&self, attempt: u32, hint_ticks: u64) {
        let ticks = soi_util::backoff::delay_with_hint(
            self.backoff_ticks,
            attempt,
            BACKOFF_CAP_TICKS,
            hint_ticks,
        );
        if ticks > 0 {
            std::thread::sleep(Duration::from_millis(ticks));
        }
    }

    fn connect(&mut self) -> std::io::Result<()> {
        let stream = TcpStream::connect((self.host.as_str(), self.port))?;
        if self.timeout_ms > 0 {
            stream.set_read_timeout(Some(Duration::from_millis(self.timeout_ms)))?;
        }
        let reader = BufReader::new(stream.try_clone()?);
        self.conn = Some((stream, reader));
        Ok(())
    }

    /// Runs one request to a response line, retrying per the config.
    fn run_request(&mut self, request: &str) -> LaneAnswer {
        let mut attempt: u32 = 0;
        loop {
            if self.dead {
                return LaneAnswer::Synthesized(synth_error(
                    request,
                    ProtoErrorKind::ConnectionLost,
                    "server connection lost with the request outstanding",
                ));
            }
            if self.conn.is_none() && self.connect().is_err() {
                self.retry_or_die(&mut attempt, 0);
                continue;
            }
            // Take the live connection for one write-then-read cycle;
            // it is only put back after a successful exchange.
            let Some((mut stream, mut reader)) = self.conn.take() else {
                continue;
            };
            if writeln!(stream, "{request}")
                .and_then(|()| stream.flush())
                .is_err()
            {
                self.retry_or_die(&mut attempt, 0);
                continue;
            }
            let mut response = String::new();
            match reader.read_line(&mut response) {
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    // The response may still arrive later on this
                    // connection; it stays dropped so a stale line can
                    // never be paired with the next request.
                    return LaneAnswer::Synthesized(synth_error(
                        request,
                        ProtoErrorKind::Timeout,
                        "no response within the request timeout",
                    ));
                }
                Err(_) | Ok(0) => {
                    // Mid-batch EOF / reset: the server (or just this
                    // connection) died before answering.
                    self.retry_or_die(&mut attempt, 0);
                    continue;
                }
                Ok(_) => {
                    let line = response.trim_end().to_string();
                    // Version-skew handshake: a response speaking a
                    // different protocol version gets a typed
                    // protocol-mismatch diagnosis (naming both
                    // versions), not a generic parse failure downstream.
                    if let Err(SoiError::Protocol { kind, message }) =
                        protocol::check_response_version(&line)
                    {
                        return LaneAnswer::Synthesized(synth_error(request, kind, &message));
                    }
                    if let Some(hint) = retryable_after(&line) {
                        if attempt < self.retries {
                            // Retryable server error: the connection is
                            // still good, keep it for the retry.
                            self.conn = Some((stream, reader));
                            self.retry_or_die(&mut attempt, hint);
                            continue;
                        }
                    }
                    self.conn = Some((stream, reader));
                    return LaneAnswer::Server(line);
                }
            }
        }
    }

    /// Consumes one retry attempt (sleeping the backoff schedule) or
    /// marks the lane dead when the budget is spent.
    fn retry_or_die(&mut self, attempt: &mut u32, hint_ticks: u64) {
        if *attempt >= self.retries {
            self.dead = true;
            return;
        }
        self.nap(*attempt, hint_ticks);
        *attempt += 1;
    }
}

/// Runs a batch of request lines against the daemon, printing one
/// response line per request to `out`, in request order. Requests the
/// server never answered print synthesized typed errors
/// (`connection-lost`/`timeout`) and are tallied in
/// [`BatchReport::lost`]; the batch neither hangs nor aborts on a
/// mid-batch server death.
pub fn run_queries<W: Write>(
    requests: &[String],
    config: &QueryConfig,
    out: &mut W,
) -> Result<BatchReport, SoiError> {
    let lanes = config.concurrency.max(1).min(requests.len().max(1));
    let slots: Mutex<Vec<Option<String>>> = Mutex::new(vec![None; requests.len()]);
    let lost = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for lane_idx in 0..lanes {
            let slots = &slots;
            let lost = &lost;
            let mut lane = Lane {
                host: config.host.clone(),
                port: config.port,
                retries: config.retries,
                backoff_ticks: config.backoff_ticks,
                timeout_ms: config.timeout_ms,
                conn: None,
                dead: false,
            };
            s.spawn(move || {
                for idx in (lane_idx..requests.len()).step_by(lanes) {
                    let line = match lane.run_request(&requests[idx]) {
                        LaneAnswer::Server(line) => line,
                        LaneAnswer::Synthesized(line) => {
                            // ordering: lane-local counting; the scope
                            // join below publishes the total, so
                            // Relaxed RMW is exact.
                            lost.fetch_add(1, Ordering::Relaxed);
                            line
                        }
                    };
                    slots.lock().unwrap_or_else(PoisonError::into_inner)[idx] = Some(line);
                }
            });
        }
    });
    let mut report = BatchReport {
        errors: 0,
        // ordering: read after `thread::scope` returns; the implicit
        // join already supplies the happens-before edge.
        lost: lost.load(Ordering::Relaxed),
    };
    let slots = slots.lock().unwrap_or_else(PoisonError::into_inner);
    for slot in slots.iter() {
        let Some(line) = slot else {
            return Err(SoiError::invalid("missing response for a request"));
        };
        if line.contains("\"status\":\"error\"") {
            report.errors += 1;
            // A shard-unavailable answer is a router response, but the
            // request never reached a compute daemon — the batch is as
            // partial as if the line had been synthesized client-side.
            if line.contains("\"kind\":\"shard-unavailable\"") {
                report.lost += 1;
            }
        }
        let printed = if config.mask_wall {
            soi_obs::report::mask_wall_clock(line)
        } else {
            line.clone()
        };
        writeln!(out, "{printed}").map_err(|e| SoiError::io("stdout", e))?;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn lane_partition_covers_all_requests() {
        // The round-robin partition used by run_queries: every index in
        // exactly one lane.
        let n = 13;
        let lanes = 4;
        let mut seen = vec![0u32; n];
        for lane in 0..lanes {
            for idx in (lane..n).step_by(lanes) {
                seen[idx] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn masking_applies_to_printed_lines() {
        let line = "{\"v\":1,\"id\":1,\"status\":\"ok\",\"wall_ns\":98765}";
        assert_eq!(
            soi_obs::report::mask_wall_clock(line),
            "{\"v\":1,\"id\":1,\"status\":\"ok\",\"wall_ns\":0}"
        );
    }

    #[test]
    fn retryable_classification_reads_the_hint() {
        let full = protocol::encode_queue_full(1, 8, 32);
        assert_eq!(retryable_after(&full), Some(32));
        let internal = protocol::encode_error(
            Some(1),
            &SoiError::protocol(ProtoErrorKind::Internal, "worker panicked"),
        );
        assert_eq!(retryable_after(&internal), Some(0));
        let ok = protocol::encode_ok(1, "", 5);
        assert_eq!(retryable_after(&ok), None);
        let bad = protocol::encode_error(
            Some(1),
            &SoiError::protocol(ProtoErrorKind::BadField, "k must be >= 1"),
        );
        assert_eq!(retryable_after(&bad), None, "client mistakes never retry");
        let shard = protocol::encode_error(
            Some(1),
            &SoiError::protocol(ProtoErrorKind::ShardUnavailable, "all replicas down"),
        );
        assert_eq!(retryable_after(&shard), Some(0), "shards may come back");
    }

    /// A server that answers with a future protocol version: the client
    /// diagnoses skew with a typed protocol-mismatch, not a parse error.
    #[test]
    fn version_skewed_server_yields_typed_protocol_mismatch() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let port = listener.local_addr().expect("addr").port();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            let mut writer = stream.try_clone().expect("clone");
            let mut reader = BufReader::new(stream);
            let mut line = String::new();
            reader.read_line(&mut line).expect("read");
            writeln!(writer, "{{\"v\":9,\"id\":0,\"status\":\"ok\"}}").expect("write");
            writer.flush().expect("flush");
            let _ = reader.read_line(&mut String::new());
        });
        let requests = vec!["{\"v\":1,\"id\":0,\"type\":\"health\"}".to_string()];
        let config = QueryConfig {
            port,
            retries: 0,
            backoff_ticks: 0,
            ..QueryConfig::default()
        };
        let mut out = Vec::new();
        let report = run_queries(&requests, &config, &mut out).expect("typed, not fatal");
        server.join().expect("server thread");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.contains("\"kind\":\"protocol-mismatch\""), "{text}");
        assert!(
            text.contains("version 9") && text.contains('1'),
            "both versions named: {text}"
        );
        assert_eq!(report.lost, 1, "a skewed answer is no answer");
    }

    /// A scripted server: answers the first request, then slams the
    /// connection and stops listening — the mid-batch-death scenario.
    #[test]
    fn mid_batch_disconnect_synthesizes_typed_lines() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let port = listener.local_addr().expect("addr").port();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            let mut writer = stream.try_clone().expect("clone");
            let mut reader = BufReader::new(stream);
            let mut line = String::new();
            reader.read_line(&mut line).expect("read");
            let id = request_id(&line).expect("id");
            writeln!(writer, "{}", protocol::encode_ok(id, "", 7)).expect("write");
            writer.flush().expect("flush");
            // Connection and listener drop here: requests 1 and 2 are
            // outstanding forever.
        });
        let requests: Vec<String> = (0..3)
            .map(|id| format!("{{\"v\":1,\"id\":{id},\"type\":\"health\"}}"))
            .collect();
        let config = QueryConfig {
            port,
            retries: 1,
            backoff_ticks: 0,
            ..QueryConfig::default()
        };
        let mut out = Vec::new();
        let report = run_queries(&requests, &config, &mut out).expect("no hang, no abort");
        server.join().expect("server thread");
        let lines: Vec<&str> = std::str::from_utf8(&out).expect("utf8").lines().collect();
        assert_eq!(lines.len(), 3, "one line per request: {lines:?}");
        assert!(lines[0].contains("\"status\":\"ok\""), "{}", lines[0]);
        for (id, line) in lines.iter().enumerate().skip(1) {
            assert!(line.contains("\"kind\":\"connection-lost\""), "{line}");
            assert!(line.contains(&format!("\"id\":{id}")), "{line}");
        }
        assert_eq!(report.lost, 2);
        assert_eq!(report.errors, 2);
    }

    #[test]
    fn unreachable_server_loses_every_request() {
        // Bind-then-drop reserves a port with no listener behind it.
        let port = {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
            listener.local_addr().expect("addr").port()
        };
        let requests: Vec<String> = (0..2)
            .map(|id| format!("{{\"v\":1,\"id\":{id},\"type\":\"health\"}}"))
            .collect();
        let config = QueryConfig {
            port,
            retries: 0,
            backoff_ticks: 0,
            concurrency: 2,
            ..QueryConfig::default()
        };
        let mut out = Vec::new();
        let report = run_queries(&requests, &config, &mut out).expect("typed, not fatal");
        assert_eq!(report.lost, 2);
        let text = String::from_utf8(out).expect("utf8");
        assert_eq!(
            text.matches("\"kind\":\"connection-lost\"").count(),
            2,
            "{text}"
        );
    }
}
