//! The `soi query` client: sends request lines to a running daemon and
//! prints responses in request order.
//!
//! Requests are distributed round-robin over `concurrency` connections,
//! each pipelining its share sequentially (the server answers one
//! request per connection at a time, so write-then-read per request is
//! exact). Responses are reassembled into the original request order
//! before printing, and `mask_wall` zeroes every `wall_*` field so two
//! identical batches print byte-identical output — the hook the e2e
//! determinism test hangs off.

use soi_util::SoiError;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Mutex, PoisonError};

/// Client options.
#[derive(Clone, Debug)]
pub struct QueryConfig {
    /// Server host (the daemon binds 127.0.0.1).
    pub host: String,
    /// Server port.
    pub port: u16,
    /// Concurrent connections (min 1).
    pub concurrency: usize,
    /// Zero `wall_*` fields in printed responses.
    pub mask_wall: bool,
}

impl Default for QueryConfig {
    fn default() -> Self {
        QueryConfig {
            host: "127.0.0.1".to_string(),
            port: 0,
            concurrency: 1,
            mask_wall: false,
        }
    }
}

/// Sends one request line over a fresh connection and returns the raw
/// response line (used by tests and one-shot queries).
pub fn send_one(host: &str, port: u16, line: &str) -> Result<String, SoiError> {
    let stream = TcpStream::connect((host, port))
        .map_err(|e| SoiError::io(format!("connect {host}:{port}"), e))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| SoiError::io("clone stream", e))?;
    writeln!(writer, "{line}").map_err(|e| SoiError::io("send request", e))?;
    writer
        .flush()
        .map_err(|e| SoiError::io("send request", e))?;
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    reader
        .read_line(&mut response)
        .map_err(|e| SoiError::io("read response", e))?;
    Ok(response.trim_end().to_string())
}

/// Runs a batch of request lines against the daemon, printing responses
/// to `out` in request order. Returns the number of `error` responses.
pub fn run_queries<W: Write>(
    requests: &[String],
    config: &QueryConfig,
    out: &mut W,
) -> Result<usize, SoiError> {
    let lanes = config.concurrency.max(1).min(requests.len().max(1));
    let slots: Mutex<Vec<Option<String>>> = Mutex::new(vec![None; requests.len()]);
    let first_error: Mutex<Option<SoiError>> = Mutex::new(None);
    std::thread::scope(|s| {
        for lane in 0..lanes {
            let slots = &slots;
            let first_error = &first_error;
            let host = config.host.as_str();
            let port = config.port;
            s.spawn(move || {
                let run = || -> Result<(), SoiError> {
                    let stream = TcpStream::connect((host, port))
                        .map_err(|e| SoiError::io(format!("connect {host}:{port}"), e))?;
                    let mut writer = stream
                        .try_clone()
                        .map_err(|e| SoiError::io("clone stream", e))?;
                    let mut reader = BufReader::new(stream);
                    for idx in (lane..requests.len()).step_by(lanes) {
                        writeln!(writer, "{}", requests[idx])
                            .map_err(|e| SoiError::io("send request", e))?;
                        writer
                            .flush()
                            .map_err(|e| SoiError::io("send request", e))?;
                        let mut response = String::new();
                        let n = reader
                            .read_line(&mut response)
                            .map_err(|e| SoiError::io("read response", e))?;
                        if n == 0 {
                            return Err(SoiError::invalid(
                                "server closed the connection mid-batch",
                            ));
                        }
                        slots.lock().unwrap_or_else(PoisonError::into_inner)[idx] =
                            Some(response.trim_end().to_string());
                    }
                    Ok(())
                };
                if let Err(err) = run() {
                    let mut slot = first_error.lock().unwrap_or_else(PoisonError::into_inner);
                    if slot.is_none() {
                        *slot = Some(err);
                    }
                }
            });
        }
    });
    if let Some(err) = first_error
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .take()
    {
        return Err(err);
    }
    let mut errors = 0;
    let slots = slots.lock().unwrap_or_else(PoisonError::into_inner);
    for slot in slots.iter() {
        let Some(line) = slot else {
            return Err(SoiError::invalid("missing response for a request"));
        };
        if line.contains("\"status\":\"error\"") {
            errors += 1;
        }
        let printed = if config.mask_wall {
            soi_obs::report::mask_wall_clock(line)
        } else {
            line.clone()
        };
        writeln!(out, "{printed}").map_err(|e| SoiError::io("stdout", e))?;
    }
    Ok(errors)
}

#[cfg(test)]
mod tests {
    // The full TCP round-trip (daemon + client) is covered by
    // tests/protocol_robustness.rs; here we only test the pure pieces.

    #[test]
    fn lane_partition_covers_all_requests() {
        // The round-robin partition used by run_queries: every index in
        // exactly one lane.
        let n = 13;
        let lanes = 4;
        let mut seen = vec![0u32; n];
        for lane in 0..lanes {
            for idx in (lane..n).step_by(lanes) {
                seen[idx] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn masking_applies_to_printed_lines() {
        let line = "{\"v\":1,\"id\":1,\"status\":\"ok\",\"wall_ns\":98765}";
        assert_eq!(
            soi_obs::report::mask_wall_clock(line),
            "{\"v\":1,\"id\":1,\"status\":\"ok\",\"wall_ns\":0}"
        );
    }
}
