//! A bounded MPMC job queue with admission control and drain-on-close.
//!
//! [`Bounded::push`] never blocks: when the queue is at capacity the
//! item comes straight back as [`PushError::Full`], which the daemon
//! turns into an immediate `queue-full` rejection — an overloaded
//! server sheds load instead of stacking latency. [`Bounded::pop`]
//! blocks until an item arrives; after [`Bounded::close`] it keeps
//! returning queued items until the queue is empty (graceful drain)
//! and only then reports exhaustion.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};

/// Why a push was refused, carrying the item back to the caller.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity; shed the request.
    Full(T),
    /// The queue was closed; the server is shutting down.
    Closed(T),
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// The bounded queue. All methods take `&self`; share via `Arc`.
pub struct Bounded<T> {
    cap: usize,
    state: Mutex<State<T>>,
    cond: Condvar,
}

impl<T> Bounded<T> {
    /// A queue holding at most `cap` items (min 1).
    pub fn new(cap: usize) -> Self {
        Bounded {
            cap: cap.max(1),
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            cond: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Non-blocking enqueue with admission control.
    pub fn push(&self, item: T) -> Result<(), PushError<T>> {
        let mut s = self.lock();
        if s.closed {
            return Err(PushError::Closed(item));
        }
        if s.items.len() >= self.cap {
            return Err(PushError::Full(item));
        }
        s.items.push_back(item);
        let depth = s.items.len();
        soi_obs::gauge("server.queue_depth").set(depth as f64);
        // Depth-at-enqueue distribution. The value is a queue length in
        // items, not nanoseconds, but it is schedule-dependent like wall
        // time, so it lives in the wall-quarantined histogram family
        // rather than poisoning the deterministic counters.
        soi_obs::wall_hist("server.queue_depth_at_enqueue").observe_ns(depth as u64);
        drop(s);
        self.cond.notify_one();
        Ok(())
    }

    /// Blocking dequeue. Returns `None` only once the queue is closed
    /// **and** fully drained.
    pub fn pop(&self) -> Option<T> {
        let mut s = self.lock();
        loop {
            if let Some(item) = s.items.pop_front() {
                soi_obs::gauge("server.queue_depth").set(s.items.len() as f64);
                return Some(item);
            }
            if s.closed {
                return None;
            }
            s = self.cond.wait(s).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the queue: future pushes fail with [`PushError::Closed`],
    /// queued items keep draining through [`Bounded::pop`].
    pub fn close(&self) {
        self.lock().closed = true;
        self.cond.notify_all();
    }

    /// Items currently queued (racy snapshot, for stats).
    pub fn depth(&self) -> usize {
        self.lock().items.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_records_depth_distribution() {
        let q = Bounded::new(8);
        let before = soi_obs::wall_hist("server.queue_depth_at_enqueue")
            .snapshot()
            .count;
        for i in 0..3 {
            q.push(i).map_err(|_| ()).expect("push");
        }
        let snap = soi_obs::wall_hist("server.queue_depth_at_enqueue").snapshot();
        assert_eq!(snap.count - before, 3, "one observation per enqueue");
    }

    #[test]
    fn full_queue_rejects_with_item() {
        let q = Bounded::new(2);
        assert!(q.push(1).is_ok());
        assert!(q.push(2).is_ok());
        match q.push(3) {
            Err(PushError::Full(3)) => {}
            other => panic!("expected Full(3), got {other:?}"),
        }
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn close_drains_then_exhausts() {
        let q = Bounded::new(4);
        q.push(1).map_err(|_| ()).expect("push");
        q.push(2).map_err(|_| ()).expect("push");
        q.close();
        match q.push(3) {
            Err(PushError::Closed(3)) => {}
            other => panic!("expected Closed(3), got {other:?}"),
        }
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_blocks_until_item_or_close() {
        let q = Arc::new(Bounded::new(1));
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || {
            let first = q2.pop();
            let second = q2.pop();
            (first, second)
        });
        q.push(7).map_err(|_| ()).expect("push");
        q.close();
        let (first, second) = consumer.join().expect("join");
        assert_eq!(first, Some(7));
        assert_eq!(second, None);
    }

    #[test]
    fn many_producers_one_consumer() {
        let q = Arc::new(Bounded::new(64));
        std::thread::scope(|s| {
            for t in 0..4 {
                let q = Arc::clone(&q);
                s.spawn(move || {
                    for i in 0..8 {
                        q.push(t * 8 + i).map_err(|_| ()).expect("push");
                    }
                });
            }
        });
        q.close();
        let mut got = Vec::new();
        while let Some(v) = q.pop() {
            got.push(v);
        }
        got.sort_unstable();
        assert_eq!(got, (0..32).collect::<Vec<_>>());
    }
}
