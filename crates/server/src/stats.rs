//! The `soi stats` client: polls a running daemon's `stats` endpoint
//! and renders the snapshot as JSON or Prometheus-style text.
//!
//! Each poll is one `{"v":1,"id":N,"type":"stats"}` request over a fresh
//! connection ([`crate::client::send_one`]). In JSON mode the raw
//! response line is printed per poll (optionally wall-masked), followed
//! — from the second poll on — by a `{"stats_delta":{...}}` line showing
//! how each counter moved since the previous poll, which is what makes
//! `--watch` useful for spotting live traffic. In Prometheus mode the
//! snapshot is re-rendered as a text exposition: `soi_`-prefixed metric
//! names (`[.-]` → `_`), `# TYPE` comments, cumulative `_bucket{le=..}`
//! lines for fixed-bucket histograms, quantile-labeled gauges for the
//! wall-timing histograms, and `thread`-labeled gauges for the
//! per-thread timing plane.

use crate::client;
use crate::json::{self, Value};
use soi_util::SoiError;
use std::collections::BTreeMap;
use std::io::Write;
use std::time::Duration;

/// Output format for a stats snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StatsFormat {
    /// Raw response line per poll, plus counter-delta lines under
    /// `--watch`.
    Json,
    /// Prometheus-style text exposition.
    Prom,
}

/// Stats client options.
#[derive(Clone, Debug)]
pub struct StatsConfig {
    /// Server host (the daemon binds 127.0.0.1).
    pub host: String,
    /// Server port.
    pub port: u16,
    /// Number of polls (min 1); `soi stats --watch N` sets N.
    pub watch: u64,
    /// Sleep between polls in milliseconds.
    pub interval_ms: u64,
    /// Output rendering.
    pub format: StatsFormat,
    /// Zero wall-clock values in the output (JSON: `mask_wall_clock`;
    /// Prometheus: wall-sourced series print 0), for golden tests.
    pub mask_wall: bool,
}

impl Default for StatsConfig {
    fn default() -> Self {
        StatsConfig {
            host: "127.0.0.1".to_string(),
            port: 0,
            watch: 1,
            interval_ms: 1000,
            format: StatsFormat::Json,
            mask_wall: false,
        }
    }
}

/// The counter section of a parsed stats response, for delta lines.
fn counter_map(doc: &Value) -> BTreeMap<String, u64> {
    doc.get("counters")
        .and_then(Value::as_obj)
        .map(|obj| {
            obj.iter()
                .filter_map(|(k, v)| v.as_u64().map(|v| (k.clone(), v)))
                .collect()
        })
        .unwrap_or_default()
}

/// Polls the daemon `config.watch` times and renders each snapshot.
/// Returns the number of polls that got a response (all of them, or the
/// error that stopped the loop).
pub fn run_stats<W: Write>(config: &StatsConfig, out: &mut W) -> Result<u64, SoiError> {
    let mut previous: Option<BTreeMap<String, u64>> = None;
    let polls = config.watch.max(1);
    for poll in 0..polls {
        if poll > 0 && config.interval_ms > 0 {
            std::thread::sleep(Duration::from_millis(config.interval_ms));
        }
        let request = format!("{{\"v\":1,\"id\":{},\"type\":\"stats\"}}", poll + 1);
        let line = client::send_one(&config.host, config.port, &request)?;
        let doc = json::parse(&line)
            .map_err(|e| SoiError::invalid(format!("malformed stats response: {e}")))?;
        match config.format {
            StatsFormat::Json => {
                let printed = if config.mask_wall {
                    soi_obs::report::mask_wall_clock(&line)
                } else {
                    line.clone()
                };
                writeln!(out, "{printed}").map_err(|e| SoiError::io("stdout", e))?;
                let counters = counter_map(&doc);
                if let Some(prev) = previous.replace(counters.clone()) {
                    writeln!(out, "{}", delta_line(&prev, &counters))
                        .map_err(|e| SoiError::io("stdout", e))?;
                }
            }
            StatsFormat::Prom => {
                write_prom(&doc, config.mask_wall, out).map_err(|e| SoiError::io("stdout", e))?;
            }
        }
    }
    Ok(polls)
}

/// The `{"stats_delta":{...}}` line: counter movement since the prior
/// poll (new counters delta against 0; decreases — a daemon restart —
/// re-baseline as the current value).
fn delta_line(prev: &BTreeMap<String, u64>, now: &BTreeMap<String, u64>) -> String {
    let moved: Vec<String> = now
        .iter()
        .map(|(name, &v)| {
            let delta = v.saturating_sub(prev.get(name).copied().unwrap_or(0));
            format!("\"{name}\":{delta}")
        })
        .collect();
    format!("{{\"stats_delta\":{{{}}}}}", moved.join(","))
}

/// A metric name in Prometheus form: `soi_` prefix, `[.-]` → `_`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("soi_");
    for c in name.chars() {
        out.push(match c {
            '.' | '-' => '_',
            c if c.is_ascii_alphanumeric() || c == '_' => c,
            _ => '_',
        });
    }
    out
}

/// Formats one numeric sample, zeroed when `mask` (wall-sourced series).
fn sample(v: u64, mask: bool) -> u64 {
    if mask {
        0
    } else {
        v
    }
}

/// Renders the parsed stats snapshot as a Prometheus text exposition.
fn write_prom<W: Write>(doc: &Value, mask_wall: bool, out: &mut W) -> std::io::Result<()> {
    if let Some(counters) = doc.get("counters").and_then(Value::as_obj) {
        for (name, v) in counters {
            let Some(v) = v.as_u64() else { continue };
            let name = prom_name(name);
            writeln!(out, "# TYPE {name} counter")?;
            writeln!(out, "{name} {v}")?;
        }
    }
    if let Some(gauges) = doc.get("gauges").and_then(Value::as_obj) {
        for (name, v) in gauges {
            let Some(v) = v.as_f64() else { continue };
            let name = prom_name(name);
            writeln!(out, "# TYPE {name} gauge")?;
            writeln!(out, "{name} {}", crate::json::fmt_num(v))?;
        }
    }
    if let Some(hists) = doc.get("histograms").and_then(Value::as_obj) {
        for (name, h) in hists {
            let bounds: Vec<f64> = h
                .get("bounds")
                .and_then(Value::as_arr)
                .map(|a| a.iter().filter_map(Value::as_f64).collect())
                .unwrap_or_default();
            let counts: Vec<u64> = h
                .get("counts")
                .and_then(Value::as_arr)
                .map(|a| a.iter().filter_map(Value::as_u64).collect())
                .unwrap_or_default();
            let name = prom_name(name);
            writeln!(out, "# TYPE {name} histogram")?;
            let mut cumulative = 0u64;
            for (i, &count) in counts.iter().enumerate() {
                cumulative += count;
                let le = bounds
                    .get(i)
                    .map_or_else(|| "+Inf".to_string(), |b| crate::json::fmt_num(*b));
                writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}")?;
            }
            writeln!(out, "{name}_count {cumulative}")?;
        }
    }
    if let Some(hists) = doc.get("timing_hists").and_then(Value::as_obj) {
        for (name, h) in hists {
            let get = |key: &str| h.get(key).and_then(Value::as_u64).unwrap_or(0);
            let name = prom_name(name);
            writeln!(out, "# TYPE {name}_ns summary")?;
            writeln!(
                out,
                "{name}_ns{{quantile=\"0.5\"}} {}",
                sample(get("wall_p50_ns"), mask_wall)
            )?;
            writeln!(
                out,
                "{name}_ns{{quantile=\"0.9\"}} {}",
                sample(get("wall_p90_ns"), mask_wall)
            )?;
            writeln!(out, "{name}_ns_count {}", get("count"))?;
            writeln!(
                out,
                "{name}_ns_max {}",
                sample(get("wall_max_ns"), mask_wall)
            )?;
        }
    }
    if let Some(threads) = doc.get("threads").and_then(Value::as_arr) {
        let fields = [
            ("wall_busy_ns", "soi_thread_busy_ns"),
            ("wall_idle_ns", "soi_thread_idle_ns"),
            ("wall_merge_ns", "soi_thread_merge_ns"),
            ("wall_lock_wait_ns", "soi_thread_lock_wait_ns"),
            ("wall_lifetime_ns", "soi_thread_lifetime_ns"),
            ("wall_items", "soi_thread_items"),
        ];
        for (field, series) in fields {
            writeln!(out, "# TYPE {series} gauge")?;
            for t in threads {
                let Some(name) = t.get("name").and_then(Value::as_str) else {
                    continue;
                };
                let v = t.get(field).and_then(Value::as_u64).unwrap_or(0);
                // Items are schedule-dependent but not wall-clock; only
                // the *_ns series zero under masking.
                let masked = mask_wall && field != "wall_items";
                writeln!(out, "{series}{{thread=\"{name}\"}} {}", sample(v, masked))?;
            }
        }
    }
    if let Some(pool) = doc.get("pool").and_then(Value::as_obj) {
        for (field, wall) in [
            ("dispatches", false),
            ("items", false),
            ("workers_max", false),
            ("wall_capacity_ns", true),
            ("wall_lifetime_ns", true),
            ("wall_imbalance_ns", true),
        ] {
            let Some(v) = pool.get(field).and_then(Value::as_u64) else {
                continue;
            };
            let series = prom_name(&format!("pool.{}", field.trim_start_matches("wall_")));
            writeln!(out, "# TYPE {series} gauge")?;
            writeln!(out, "{series} {}", sample(v, mask_wall && wall))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_doc() -> Value {
        let text = concat!(
            "{\"v\":1,\"id\":1,\"status\":\"ok\",",
            "\"counters\":{\"server.requests_total\":7,\"server.cache_hits\":3},",
            "\"gauges\":{\"server.queue_depth\":2},",
            "\"histograms\":{\"test.sizes\":{\"bounds\":[1,8],\"counts\":[2,1,0]}},",
            "\"timing_hists\":{\"server.request_ns\":",
            "{\"count\":7,\"wall_p50_ns\":1000,\"wall_p90_ns\":2000,\"wall_max_ns\":3000}},",
            "\"threads\":[{\"name\":\"thread.0\",\"wall_busy_ns\":50,\"wall_idle_ns\":9,",
            "\"wall_merge_ns\":1,\"wall_lock_wait_ns\":0,\"wall_lifetime_ns\":60,",
            "\"wall_items\":4}],",
            "\"pool\":{\"dispatches\":2,\"items\":8,\"workers_max\":2,",
            "\"wall_capacity_ns\":120,\"wall_lifetime_ns\":110,\"wall_imbalance_ns\":10},",
            "\"wall_ns\":42}"
        );
        json::parse(text).expect("sample doc")
    }

    #[test]
    fn prom_rendering_covers_every_section() {
        let mut out = Vec::new();
        write_prom(&sample_doc(), false, &mut out).expect("render");
        let text = String::from_utf8(out).expect("utf8");
        for needle in [
            "# TYPE soi_server_requests_total counter",
            "soi_server_requests_total 7",
            "# TYPE soi_server_queue_depth gauge",
            "soi_server_queue_depth 2",
            "# TYPE soi_test_sizes histogram",
            "soi_test_sizes_bucket{le=\"1\"} 2",
            "soi_test_sizes_bucket{le=\"8\"} 3",
            "soi_test_sizes_bucket{le=\"+Inf\"} 3",
            "soi_test_sizes_count 3",
            "# TYPE soi_server_request_ns_ns summary",
            "soi_server_request_ns_ns{quantile=\"0.5\"} 1000",
            "soi_server_request_ns_ns_count 7",
            "soi_thread_busy_ns{thread=\"thread.0\"} 50",
            "soi_thread_items{thread=\"thread.0\"} 4",
            "soi_pool_dispatches 2",
            "soi_pool_imbalance_ns 10",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (series, value) = line.rsplit_once(' ').expect(line);
            assert!(!series.is_empty() && value.parse::<f64>().is_ok(), "{line}");
        }
    }

    #[test]
    fn prom_masking_zeroes_wall_series_only() {
        let mut out = Vec::new();
        write_prom(&sample_doc(), true, &mut out).expect("render");
        let text = String::from_utf8(out).expect("utf8");
        assert!(
            text.contains("soi_server_request_ns_ns{quantile=\"0.5\"} 0"),
            "{text}"
        );
        assert!(
            text.contains("soi_server_request_ns_ns_count 7"),
            "counts survive: {text}"
        );
        assert!(
            text.contains("soi_thread_busy_ns{thread=\"thread.0\"} 0"),
            "{text}"
        );
        assert!(
            text.contains("soi_thread_items{thread=\"thread.0\"} 4"),
            "{text}"
        );
        assert!(text.contains("soi_pool_items 8"), "{text}");
        assert!(text.contains("soi_pool_capacity_ns 0"), "{text}");
    }

    #[test]
    fn delta_line_tracks_counter_movement() {
        let prev: BTreeMap<String, u64> = [("a".to_string(), 5), ("b".to_string(), 2)]
            .into_iter()
            .collect();
        let now: BTreeMap<String, u64> = [
            ("a".to_string(), 9),
            ("b".to_string(), 2),
            ("c".to_string(), 4),
        ]
        .into_iter()
        .collect();
        assert_eq!(
            delta_line(&prev, &now),
            "{\"stats_delta\":{\"a\":4,\"b\":0,\"c\":4}}"
        );
    }

    #[test]
    fn prom_names_are_sanitized() {
        assert_eq!(prom_name("server.request_ns"), "soi_server_request_ns");
        assert_eq!(prom_name("infmax-tc.rounds"), "soi_infmax_tc_rounds");
    }

    /// End-to-end against a scripted server: two polls produce two
    /// snapshots and one delta line.
    #[test]
    fn watch_polls_and_prints_deltas() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let port = listener.local_addr().expect("addr").port();
        let server = std::thread::spawn(move || {
            for reqs in [3u64, 8] {
                let (stream, _) = listener.accept().expect("accept");
                let mut writer = stream.try_clone().expect("clone");
                let mut reader = std::io::BufReader::new(stream);
                let mut line = String::new();
                std::io::BufRead::read_line(&mut reader, &mut line).expect("read");
                assert!(line.contains("\"type\":\"stats\""), "{line}");
                let payload = format!(
                    "\"counters\":{{\"server.requests_total\":{reqs}}},\"stats_version\":2"
                );
                writeln!(writer, "{}", crate::protocol::encode_ok(1, &payload, 5)).expect("write");
                writer.flush().expect("flush");
            }
        });
        let config = StatsConfig {
            port,
            watch: 2,
            interval_ms: 0,
            mask_wall: true,
            ..StatsConfig::default()
        };
        let mut out = Vec::new();
        let polls = run_stats(&config, &mut out).expect("stats");
        server.join().expect("server");
        assert_eq!(polls, 2);
        let text = String::from_utf8(out).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "{text}");
        assert!(lines[0].contains("\"server.requests_total\":3"), "{text}");
        assert!(lines[0].contains("\"wall_ns\":0"), "masked: {text}");
        assert!(lines[1].contains("\"server.requests_total\":8"), "{text}");
        assert_eq!(
            lines[2], "{\"stats_delta\":{\"server.requests_total\":5}}",
            "{text}"
        );
    }
}
