//! The shard map: consistent hashing of graph names onto shards, plus
//! the shared replica-health book the forwarding paths consult.
//!
//! Placement is a classic consistent-hash ring: every shard projects
//! [`VNODES`] virtual points onto the `u64` circle (SplitMix64-mixed,
//! [`soi_util::rng::mix64`]), and a graph lands on the first point at or
//! after its own hash. The ring is fixed at startup; the `rebalance`
//! control writes per-graph overrides on top, so moving one graph never
//! reshuffles any other. Placement is a pure function of (shard count,
//! graph name, overrides) — two routers with the same arguments route
//! identically, which is what the chaos matrix's byte-identical
//! convergence assertions lean on.
//!
//! Health is advisory, never authoritative: a replica that failed a
//! connect or mid-request is *deprioritized* (healthy replicas are
//! tried first) but stays in the rotation, so a respawned daemon heals
//! the fabric without an operator touching anything.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Mutex, PoisonError};

/// Virtual points each shard projects onto the hash ring. Enough that
/// graph load spreads evenly across a handful of shards; small enough
/// that ring construction is trivially cheap.
pub const VNODES: u64 = 64;

/// FNV-1a folded through the SplitMix64 finalizer: a well-mixed `u64`
/// position on the ring for a graph name.
fn hash_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    soi_util::rng::mix64(h)
}

/// One replica's shared, advisory health record.
#[derive(Clone, Debug)]
pub struct ReplicaState {
    /// `host:port` of the `soi serve` daemon.
    pub addr: String,
    /// Whether the last exchange with this replica succeeded.
    pub healthy: bool,
    /// Requests successfully relayed through this replica.
    pub forwarded: u64,
    /// Connect/IO/version failures observed on this replica.
    pub failures: u64,
}

/// The immutable ring plus the mutable overlays (rebalance overrides,
/// replica health, per-shard shed state).
pub struct ShardMap {
    /// `(ring position, shard index)`, sorted by position.
    ring: Vec<(u64, usize)>,
    /// Replica health per shard, index-aligned with the CLI's shard
    /// specs.
    shards: Vec<Mutex<Vec<ReplicaState>>>,
    /// Graph-name → shard overrides written by `rebalance`.
    overrides: Mutex<BTreeMap<String, usize>>,
    /// Per-shard load-shedding state: `(remaining budget, queue_depth,
    /// retry_after_ticks)` from the last `queue-full` rejection seen.
    shed: Vec<Mutex<(u64, u64, u64)>>,
    /// Replicas currently marked unhealthy, across all shards (the
    /// authoritative value behind the `router.replicas_unhealthy`
    /// gauge).
    unhealthy_total: AtomicI64,
}

impl ShardMap {
    /// Builds the map over `shards` replica sets (each a list of
    /// `host:port` addresses).
    pub fn new(shards: Vec<Vec<String>>) -> ShardMap {
        let mut ring = Vec::with_capacity(shards.len() * VNODES as usize);
        for shard in 0..shards.len() {
            for v in 0..VNODES {
                ring.push((soi_util::rng::mix64((shard as u64) << 32 | v), shard));
            }
        }
        ring.sort_unstable();
        let shards: Vec<Mutex<Vec<ReplicaState>>> = shards
            .into_iter()
            .map(|replicas| {
                Mutex::new(
                    replicas
                        .into_iter()
                        .map(|addr| ReplicaState {
                            addr,
                            healthy: true,
                            forwarded: 0,
                            failures: 0,
                        })
                        .collect(),
                )
            })
            .collect();
        let shed = (0..shards.len()).map(|_| Mutex::new((0, 0, 0))).collect();
        ShardMap {
            ring,
            shards,
            overrides: Mutex::new(BTreeMap::new()),
            shed,
            unhealthy_total: AtomicI64::new(0),
        }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the map holds no shards (never true for a running
    /// router: the CLI requires at least one spec).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The shard owning `graph`: the rebalance override when one
    /// exists, the ring otherwise.
    pub fn shard_for(&self, graph: &str) -> usize {
        if let Some(&shard) = self
            .overrides
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(graph)
        {
            return shard;
        }
        let h = hash_name(graph);
        let at = self.ring.partition_point(|&(point, _)| point < h);
        self.ring[at % self.ring.len()].1
    }

    /// Records a rebalance override. In-flight requests already resolved
    /// to the old shard and complete there; every later request routes
    /// to `shard`. Errors on an out-of-range shard index.
    pub fn rebalance(&self, graph: &str, shard: usize) -> Result<(), String> {
        if shard >= self.len() {
            return Err(format!(
                "shard {shard} out of range (router holds {} shards)",
                self.len()
            ));
        }
        self.overrides
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(graph.to_string(), shard);
        Ok(())
    }

    /// Snapshot of the rebalance-override table, for persistence.
    pub fn overrides_snapshot(&self) -> BTreeMap<String, usize> {
        self.overrides
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Installs a persisted override table wholesale (replacing any
    /// current overrides). Errors without touching the table when any
    /// entry names an out-of-range shard — a file written by a
    /// differently sized fleet must not partially apply.
    pub fn load_overrides(&self, overrides: BTreeMap<String, usize>) -> Result<(), String> {
        if let Some((graph, &shard)) = overrides.iter().find(|&(_, &shard)| shard >= self.len()) {
            return Err(format!(
                "override for {graph:?} names shard {shard}, but the router holds {} shards",
                self.len()
            ));
        }
        *self
            .overrides
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = overrides;
        Ok(())
    }

    /// The replica addresses of `shard` in preference order: healthy
    /// replicas first (stable by index), then unhealthy ones — a fully
    /// dark shard is still probed, so a respawned replica heals it.
    /// Returned as `(replica index, addr)` pairs.
    pub fn replica_order(&self, shard: usize) -> Vec<(usize, String)> {
        let replicas = self.shards[shard]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let mut order: Vec<(usize, String)> = Vec::with_capacity(replicas.len());
        for (idx, r) in replicas.iter().enumerate() {
            if r.healthy {
                order.push((idx, r.addr.clone()));
            }
        }
        for (idx, r) in replicas.iter().enumerate() {
            if !r.healthy {
                order.push((idx, r.addr.clone()));
            }
        }
        order
    }

    /// Records the outcome of one exchange with `shard`/`replica` and
    /// keeps the `router.replicas_unhealthy` gauge in step.
    pub fn mark(&self, shard: usize, replica: usize, ok: bool) {
        let delta: i64;
        {
            let mut replicas = self.shards[shard]
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            let Some(r) = replicas.get_mut(replica) else {
                return;
            };
            delta = match (r.healthy, ok) {
                (true, false) => 1,
                (false, true) => -1,
                _ => 0,
            };
            r.healthy = ok;
            if ok {
                r.forwarded += 1;
            } else {
                r.failures += 1;
            }
        }
        if delta != 0 {
            // ordering: monotonic transition counter; the gauge it feeds
            // is read for reporting only, so a Relaxed RMW is exact.
            let total = self.unhealthy_total.fetch_add(delta, Ordering::Relaxed) + delta;
            soi_obs::gauge("router.replicas_unhealthy").set(total.max(0) as f64);
        }
    }

    /// Snapshot of every shard's replica health, for the stats payload.
    pub fn health_snapshot(&self) -> Vec<Vec<ReplicaState>> {
        self.shards
            .iter()
            .map(|m| m.lock().unwrap_or_else(PoisonError::into_inner).clone())
            .collect()
    }

    /// Arms `shard`'s shed window after a `queue-full` rejection
    /// carrying `(queue_depth, retry_after_ticks)`: the next
    /// `hint / 16` requests for the shard are shed at the router
    /// (deterministic in the hint, which is itself deterministic in the
    /// shard's queue state).
    pub fn arm_shed(&self, shard: usize, queue_depth: u64, retry_after_ticks: u64) {
        let mut shed = self.shed[shard]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        *shed = (retry_after_ticks / 16, queue_depth, retry_after_ticks);
    }

    /// Consumes one slot of `shard`'s shed window: `Some((queue_depth,
    /// retry_after_ticks))` when this request should be shed at the
    /// router, `None` when it should be forwarded.
    pub fn take_shed(&self, shard: usize) -> Option<(u64, u64)> {
        let mut shed = self.shed[shard]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if shed.0 == 0 {
            return None;
        }
        shed.0 -= 1;
        Some((shed.1, shed.2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(shards: usize, replicas: usize) -> ShardMap {
        ShardMap::new(
            (0..shards)
                .map(|s| {
                    (0..replicas)
                        .map(|r| format!("127.0.0.1:{}", 9000 + s * 10 + r))
                        .collect()
                })
                .collect(),
        )
    }

    #[test]
    fn placement_is_deterministic_and_total() {
        let a = map(3, 1);
        let b = map(3, 1);
        for name in [
            "net",
            "web",
            "soc-epinions",
            "g0",
            "g1",
            "a-very-long-graph-name",
        ] {
            let shard = a.shard_for(name);
            assert!(shard < 3);
            assert_eq!(shard, b.shard_for(name), "identical maps agree on {name}");
        }
    }

    #[test]
    fn placement_spreads_across_shards() {
        let m = map(3, 1);
        let mut counts = [0usize; 3];
        for i in 0..300 {
            counts[m.shard_for(&format!("graph-{i}"))] += 1;
        }
        // With 64 vnodes per shard the split is roughly even; the point
        // here is only that no shard is starved or monopolized.
        for (shard, &c) in counts.iter().enumerate() {
            assert!(c > 30, "shard {shard} starved: {counts:?}");
            assert!(c < 200, "shard {shard} monopolized: {counts:?}");
        }
    }

    #[test]
    fn rebalance_overrides_the_ring_for_one_graph_only() {
        let m = map(3, 1);
        let home = m.shard_for("net");
        let target = (home + 1) % 3;
        m.rebalance("net", target).expect("in range");
        assert_eq!(m.shard_for("net"), target);
        // Unrelated graphs keep their ring placement.
        let m2 = map(3, 1);
        for i in 0..50 {
            let name = format!("other-{i}");
            assert_eq!(m.shard_for(&name), m2.shard_for(&name));
        }
        assert!(m.rebalance("net", 3).is_err(), "out of range");
    }

    #[test]
    fn replica_order_prefers_healthy_but_never_abandons() {
        let m = map(1, 3);
        m.mark(0, 0, false);
        let order = m.replica_order(0);
        assert_eq!(order.len(), 3, "dark replicas stay in rotation");
        assert_eq!(order[0].0, 1, "healthy first");
        assert_eq!(order[1].0, 2);
        assert_eq!(order[2].0, 0, "failed replica probed last");
        // A success heals it back to the front.
        m.mark(0, 0, true);
        assert_eq!(m.replica_order(0)[0].0, 0);
        let snap = m.health_snapshot();
        assert_eq!(snap[0][0].failures, 1);
        assert_eq!(snap[0][0].forwarded, 1);
        assert!(snap[0][0].healthy);
    }

    #[test]
    fn shed_window_is_sized_by_the_hint_and_drains() {
        let m = map(2, 1);
        assert_eq!(m.take_shed(0), None, "no window armed");
        m.arm_shed(0, 8, 32);
        assert_eq!(m.take_shed(0), Some((8, 32)));
        assert_eq!(m.take_shed(0), Some((8, 32)));
        assert_eq!(m.take_shed(0), None, "32/16 = 2 slots, then forward");
        assert_eq!(m.take_shed(1), None, "windows are per shard");
    }
}
