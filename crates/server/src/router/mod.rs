//! The shard router: a front-end daemon that fans queries out over a
//! fleet of `soi serve` worker daemons.
//!
//! `soi route` binds a TCP port speaking the exact same versioned
//! line-delimited JSON protocol as a single daemon — clients cannot
//! tell the difference, and `soi query`/`soi stats` work unchanged.
//! Behind the front door, graph names are consistent-hashed onto shards
//! ([`shard::ShardMap`]) and each compute request is relayed verbatim
//! to one replica of the owning shard, so the shard's answer bytes are
//! the answer bytes (byte-identical convergence is inherited, not
//! reimplemented).
//!
//! The robustness surface:
//!
//! * **Replica failover** — a connect failure, mid-request EOF, or
//!   version-skewed answer marks the replica unhealthy and the request
//!   is retried on the next replica (capped deterministic backoff,
//!   [`soi_util::backoff::delay_with_hint`]). Health is advisory:
//!   dark replicas are probed last, never abandoned, so a respawned
//!   daemon heals the fabric.
//! * **Typed `shard-unavailable`** — when the retry budget is spent
//!   with every replica of the owning shard down, the client gets a
//!   typed error naming the shard, never a hang or a dropped line.
//! * **Load shedding** — a shard's structured `queue-full` rejection is
//!   relayed verbatim (the `retry_after_ticks` hint re-emitted by
//!   construction) and additionally arms a deterministic shed window:
//!   the next `hint/16` requests for that shard are answered
//!   `queue-full` at the router without touching the overloaded shard.
//! * **Drain and rebalance** — `shutdown` stops the accept loop and
//!   drains open connections exactly like the single daemon; the
//!   `rebalance` control re-homes one graph without touching in-flight
//!   requests (they complete on the shard they already resolved to).
//!   With `--overrides-file` the override table is persisted through
//!   [`soi_util::ckpt`] (checksummed, atomic rename) after every
//!   accepted rebalance and reloaded at startup, pinned to the shard
//!   layout — a restarted router re-homes every graph identically.
//! * **Aggregated stats** — `stats` answers the v2 payload with the
//!   router's own registry merged with the summed counters of one live
//!   replica per shard, plus a `shards` health array.

pub mod shard;

use crate::client;
use crate::daemon::{self, read_line_capped, LineRead};
use crate::json::{self, Value};
use crate::protocol::{self, Request, DEFAULT_MAX_LINE};
use shard::ShardMap;
use soi_util::ckpt::{self, ByteReader, Checkpoint, KIND_ROUTER_OVERRIDES};
use soi_util::hash::Mix64Hasher;
use soi_util::{ProtoErrorKind, SoiError};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Largest single backoff sleep between replica attempts (ticks ≈ ms).
const BACKOFF_CAP_TICKS: u64 = 1024;

/// Router options fixed at startup.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// TCP port to bind on 127.0.0.1 (0 = ephemeral; announced on
    /// stdout as `listening on HOST:PORT`, same as `soi serve`).
    pub port: u16,
    /// Replica address sets, one per shard (`host:port` each).
    pub shards: Vec<Vec<String>>,
    /// Retry attempts per request across a shard's replicas (the first
    /// attempt is free; `retries` more are allowed).
    pub replica_retries: u32,
    /// Base backoff delay in ticks (1 tick = 1 ms) between replica
    /// attempts; doubles per attempt, capped. 0 disables sleeping.
    pub backoff_ticks: u64,
    /// Request-line length cap in bytes.
    pub max_line: usize,
    /// When set, the rebalance-override table is persisted to this
    /// checkpoint file after every accepted `rebalance` and reloaded at
    /// startup (missing file = empty table; corrupt or layout-mismatched
    /// file = typed startup error).
    pub overrides_path: Option<PathBuf>,
    /// Background liveness-probe period in milliseconds (0 = disabled).
    /// When on, a probe thread sends a `health` request to every
    /// replica each period, so a healed replica is marked healthy
    /// *before* the next client request needs a failover — without it,
    /// recovery is only discovered by spending a retry on the replica.
    pub probe_interval_ms: u64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            port: 0,
            shards: Vec::new(),
            replica_retries: 2,
            backoff_ticks: 1,
            max_line: DEFAULT_MAX_LINE,
            overrides_path: None,
            probe_interval_ms: 0,
        }
    }
}

/// One background probe sweep: a `health` round-trip to every replica.
/// A replica that answers a version-correct line is marked healthy (a
/// previously-dark one counts as a recovery); one that does not is
/// marked unhealthy, so probing also *detects* silent death instead of
/// leaving it to the next client request.
fn probe_sweep(state: &RouterState) {
    for (shard_idx, replicas) in state.map.health_snapshot().iter().enumerate() {
        for (replica_idx, replica) in replicas.iter().enumerate() {
            soi_obs::counter_add!("router.probe_attempts", 1);
            let alive = split_addr(&replica.addr)
                .and_then(|(host, port)| {
                    client::send_one(host, port, "{\"v\":1,\"id\":0,\"type\":\"health\"}").ok()
                })
                .is_some_and(|line| protocol::check_response_version(&line).is_ok());
            if alive && !replica.healthy {
                soi_obs::counter_add!("router.probe_recoveries", 1);
                soi_obs::event!(
                    soi_obs::Level::Info,
                    "probe re-adopted replica {} of shard {shard_idx}",
                    replica.addr
                );
            }
            state.map.mark(shard_idx, replica_idx, alive);
        }
    }
}

/// Shared router state: the shard map plus the retry policy.
struct RouterState {
    map: ShardMap,
    replica_retries: u32,
    backoff_ticks: u64,
    /// Persistence target for the override table, when configured:
    /// `(path, layout fingerprint)`.
    persist: Option<(PathBuf, u64)>,
}

/// Fingerprint of the shard layout (count and every replica address, in
/// order). Pins a persisted override file to the fleet that wrote it:
/// shard *indices* only mean something relative to a concrete layout.
fn layout_fingerprint(shards: &[Vec<String>]) -> u64 {
    let mut h = Mix64Hasher::new();
    h.update_u64(shards.len() as u64);
    for replicas in shards {
        h.update_u64(replicas.len() as u64);
        for addr in replicas {
            h.update_u64(addr.len() as u64);
            h.update(addr.as_bytes());
        }
    }
    h.finish()
}

/// Serializes the override table: entry count, then per entry the
/// graph-name length (u32), name bytes, and shard index (u32). BTreeMap
/// iteration order makes the bytes canonical for a given table.
fn encode_overrides(overrides: &BTreeMap<String, usize>) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(overrides.len() as u64).to_le_bytes());
    for (graph, &shard) in overrides {
        out.extend_from_slice(&(graph.len() as u32).to_le_bytes());
        out.extend_from_slice(graph.as_bytes());
        out.extend_from_slice(&(shard as u32).to_le_bytes());
    }
    out
}

/// Decodes an override payload written by [`encode_overrides`].
fn decode_overrides(payload: &[u8]) -> Result<BTreeMap<String, usize>, SoiError> {
    let mut r = ByteReader::new(payload);
    let count = r.u64("override count")?;
    let mut overrides = BTreeMap::new();
    for _ in 0..count {
        let name_len = r.u32("override name length")? as usize;
        let name = std::str::from_utf8(r.take(name_len, "override name")?)
            .map_err(|_| SoiError::invalid("override name is not UTF-8"))?
            .to_string();
        let shard = r.u32("override shard")? as usize;
        overrides.insert(name, shard);
    }
    r.expect_end("override table")?;
    Ok(overrides)
}

/// Writes the override table to `path` as a [`KIND_ROUTER_OVERRIDES`]
/// checkpoint (atomic tmp-file + rename, trailing checksum).
fn save_overrides(
    path: &std::path::Path,
    layout_fp: u64,
    overrides: &BTreeMap<String, usize>,
) -> Result<(), SoiError> {
    soi_util::failpoint!("router.overrides.persist");
    let payload = encode_overrides(overrides);
    ckpt::write_checkpoint(
        path,
        &Checkpoint {
            kind: KIND_ROUTER_OVERRIDES,
            graph_fingerprint: layout_fp,
            // The layout fingerprint already covers everything placement
            // depends on; there is no separate run configuration.
            config_fingerprint: layout_fp,
            total_units: overrides.len() as u64,
            done_units: overrides.len() as u64,
            payload,
        },
    )
}

/// Loads a persisted override table. A missing file is an empty table
/// (first boot); a corrupt or layout-mismatched file is a typed error —
/// silently dropping overrides would re-home graphs behind the
/// operator's back.
fn load_overrides_file(
    path: &std::path::Path,
    layout_fp: u64,
) -> Result<BTreeMap<String, usize>, SoiError> {
    if !path.exists() {
        return Ok(BTreeMap::new());
    }
    let loaded = ckpt::read_checkpoint(path, KIND_ROUTER_OVERRIDES)?;
    loaded.validate(KIND_ROUTER_OVERRIDES, layout_fp, layout_fp)?;
    decode_overrides(&loaded.payload)
}

/// `host:port` split for `TcpStream::connect` / `send_one`.
fn split_addr(addr: &str) -> Option<(&str, u16)> {
    let (host, port) = addr.rsplit_once(':')?;
    Some((host, port.parse().ok()?))
}

/// How one forwarded request came back.
enum Forwarded {
    /// The shard's raw response line, relayed verbatim.
    Relay(String),
    /// A router-synthesized error line (shard dark, or skewed).
    Synthesized(String),
}

/// Relays one raw request line to a replica of `shard_idx`, failing
/// over across replicas. `conn` caches this connection's open stream to
/// the shard between requests (one request in flight per client
/// connection, matching the daemon's own discipline).
#[allow(clippy::type_complexity)]
fn forward(
    state: &RouterState,
    conn: &mut Option<(usize, TcpStream, BufReader<TcpStream>)>,
    shard_idx: usize,
    id: u64,
    line: &str,
) -> Forwarded {
    // Shed window armed by a recent queue-full rejection: answer at the
    // router, re-emitting the shard's own depth and hint.
    if let Some((depth, hint)) = state.map.take_shed(shard_idx) {
        soi_obs::counter_add!("router.requests_shed", 1);
        return Forwarded::Synthesized(protocol::encode_queue_full(id, depth as usize, hint));
    }
    let mut last_skew: Option<String> = None;
    let mut attempt: u32 = 0;
    while attempt <= state.replica_retries {
        let (replica_idx, mut stream, mut reader) = match conn.take() {
            Some(live) => live,
            None => {
                let order = state.map.replica_order(shard_idx);
                let (ridx, addr) = &order[attempt as usize % order.len()];
                match split_addr(addr).map(|(host, port)| TcpStream::connect((host, port))) {
                    Some(Ok(stream)) => match stream.try_clone() {
                        Ok(clone) => (*ridx, stream, BufReader::new(clone)),
                        Err(_) => {
                            retry(state, &mut attempt, shard_idx, *ridx);
                            continue;
                        }
                    },
                    _ => {
                        retry(state, &mut attempt, shard_idx, *ridx);
                        continue;
                    }
                }
            }
        };
        soi_util::failpoint_crash!("router.forward.write");
        if writeln!(stream, "{line}")
            .and_then(|()| stream.flush())
            .is_err()
        {
            retry(state, &mut attempt, shard_idx, replica_idx);
            continue;
        }
        let mut response = String::new();
        match reader.read_line(&mut response) {
            Ok(n) if n > 0 => {
                let response = response.trim_end().to_string();
                if let Err(skew) = protocol::check_response_version(&response) {
                    soi_obs::counter_add!("router.protocol_mismatches", 1);
                    last_skew = Some(skew.to_string());
                    retry(state, &mut attempt, shard_idx, replica_idx);
                    continue;
                }
                state.map.mark(shard_idx, replica_idx, true);
                if attempt > 0 {
                    soi_obs::counter_add!("router.failovers", 1);
                }
                soi_obs::counter_add!("router.forwarded", 1);
                if let Some((depth, hint)) = queue_full_detail(&response) {
                    state.map.arm_shed(shard_idx, depth, hint);
                }
                *conn = Some((replica_idx, stream, reader));
                return Forwarded::Relay(response);
            }
            _ => {
                retry(state, &mut attempt, shard_idx, replica_idx);
                continue;
            }
        }
    }
    // Budget spent. A consistently version-skewed shard is diagnosed as
    // skew; a dark one as shard-unavailable. Either way the client gets
    // a typed line, never a hang.
    if let Some(skew) = last_skew {
        return Forwarded::Synthesized(protocol::encode_error(
            Some(id),
            &SoiError::protocol(ProtoErrorKind::ProtocolMismatch, skew),
        ));
    }
    soi_obs::counter_add!("router.shard_unavailable", 1);
    Forwarded::Synthesized(protocol::encode_error(
        Some(id),
        &SoiError::protocol(
            ProtoErrorKind::ShardUnavailable,
            format!("all replicas of shard {shard_idx} are unreachable"),
        ),
    ))
}

/// Books one failed attempt: marks the replica unhealthy, sleeps the
/// backoff schedule, and advances the attempt counter.
fn retry(state: &RouterState, attempt: &mut u32, shard_idx: usize, replica_idx: usize) {
    state.map.mark(shard_idx, replica_idx, false);
    soi_obs::counter_add!("router.forward_retries", 1);
    let ticks =
        soi_util::backoff::delay_with_hint(state.backoff_ticks, *attempt, BACKOFF_CAP_TICKS, 0);
    if ticks > 0 {
        std::thread::sleep(Duration::from_millis(ticks));
    }
    *attempt += 1;
}

/// The `(queue_depth, retry_after_ticks)` of a structured `queue-full`
/// rejection, when `line` is one.
fn queue_full_detail(line: &str) -> Option<(u64, u64)> {
    if !line.contains("\"kind\":\"queue-full\"") {
        return None;
    }
    let err = json::parse(line).ok()?.get("error")?.clone();
    Some((
        err.get("queue_depth").and_then(Value::as_u64)?,
        err.get("retry_after_ticks").and_then(Value::as_u64)?,
    ))
}

/// Builds the router's aggregated `stats` payload: summed flat `graphs`
/// and counters over one reachable replica per shard, a `shards` health
/// array, and the router process's own v2 sections with the shard
/// counter sums merged in.
fn stats_payload(state: &RouterState) -> String {
    let snapshot = state.map.health_snapshot();
    let mut agg: BTreeMap<String, u64> = BTreeMap::new();
    let mut graphs_total: u64 = 0;
    let mut shards_json: Vec<String> = Vec::with_capacity(snapshot.len());
    for (shard_idx, replicas) in snapshot.iter().enumerate() {
        let mut polled = false;
        for replica in replicas {
            if polled {
                break;
            }
            let Some((host, port)) = split_addr(&replica.addr) else {
                continue;
            };
            let Ok(line) = client::send_one(host, port, "{\"v\":1,\"id\":0,\"type\":\"stats\"}")
            else {
                continue;
            };
            let Ok(doc) = json::parse(&line) else {
                continue;
            };
            polled = true;
            graphs_total += doc.get("graphs").and_then(Value::as_u64).unwrap_or(0);
            if let Some(counters) = doc.get("counters").and_then(Value::as_obj) {
                for (name, v) in counters {
                    if let Some(v) = v.as_u64() {
                        *agg.entry(name.clone()).or_default() += v;
                    }
                }
            }
        }
        let replicas_json: Vec<String> = replicas
            .iter()
            .map(|r| {
                format!(
                    "{{\"addr\":\"{}\",\"healthy\":{},\"forwarded\":{},\"failures\":{}}}",
                    json::escape(&r.addr),
                    r.healthy,
                    r.forwarded,
                    r.failures
                )
            })
            .collect();
        shards_json.push(format!(
            "{{\"shard\":{shard_idx},\"replicas\":[{}]}}",
            replicas_json.join(",")
        ));
    }
    // Merge the router's own registry counters into the shard sums; the
    // name spaces are disjoint (router.* vs server.*) so `soi stats`
    // against the router sees the whole fabric in one counters map.
    for (name, v) in soi_obs::metrics::registry().counter_values() {
        *agg.entry(name).or_default() += v;
    }
    let counters: Vec<String> = agg
        .iter()
        .map(|(name, v)| format!("\"{name}\":{v}"))
        .collect();
    format!(
        "\"graphs\":{graphs_total},\"shards\":[{}],\"counters\":{{{}}},{}",
        shards_json.join(","),
        counters.join(","),
        v2_sections_without_counters()
    )
}

/// The daemon's v2 sections minus its registry-only `counters` object
/// (the router substitutes the merged fabric-wide map).
fn v2_sections_without_counters() -> String {
    let sections = daemon::v2_sections();
    // v2_sections emits `"stats_version":N,"counters":{...},"gauges":…`;
    // cut the counters object out by matching its brace span.
    let Some(start) = sections.find("\"counters\":{") else {
        return sections;
    };
    let tail = &sections[start..];
    let mut depth = 0usize;
    let mut end = None;
    for (at, c) in tail.char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    end = Some(at);
                    break;
                }
            }
            _ => {}
        }
    }
    let Some(end) = end else {
        return sections;
    };
    // Also consume the trailing comma separating it from the next key.
    let mut rest = start + end + 1;
    if sections[rest..].starts_with(',') {
        rest += 1;
    }
    format!("{}{}", &sections[..start], &sections[rest..])
}

/// Builds the inline response for a control request at the router.
fn control_response(state: &RouterState, id: u64, req: &Request) -> String {
    match req {
        Request::Health => protocol::encode_ok(
            id,
            &format!("\"ok\":true,\"shards\":{}", state.map.len()),
            0,
        ),
        Request::Stats => protocol::encode_ok(id, &stats_payload(state), 0),
        Request::Shutdown => protocol::encode_ok(id, "\"draining\":true", 0),
        Request::Rebalance { graph, shard } => match state.map.rebalance(graph, *shard) {
            Ok(()) => {
                soi_obs::counter_add!("router.rebalances", 1);
                // Persist best-effort: the in-memory override is already
                // live, and failing the rebalance over a disk hiccup
                // would leave the operator unsure which state won. The
                // counter and event make the divergence visible.
                if let Some((path, layout_fp)) = &state.persist {
                    if let Err(err) =
                        save_overrides(path, *layout_fp, &state.map.overrides_snapshot())
                    {
                        soi_obs::counter_add!("router.override_persist_errors", 1);
                        soi_obs::event!(
                            soi_obs::Level::Warn,
                            "override persist to {} failed: {err}",
                            path.display()
                        );
                    }
                }
                protocol::encode_ok(
                    id,
                    &format!(
                        "\"rebalanced\":\"{}\",\"shard\":{shard}",
                        json::escape(graph)
                    ),
                    0,
                )
            }
            Err(message) => protocol::encode_error(
                Some(id),
                &SoiError::protocol(ProtoErrorKind::BadField, message),
            ),
        },
        _ => protocol::encode_error(
            Some(id),
            &SoiError::protocol(ProtoErrorKind::BadField, "not a control request"),
        ),
    }
}

/// Serves one client connection: reads request lines, answers controls
/// inline, relays compute requests to the owning shard.
fn handle_conn(
    stream: TcpStream,
    state: Arc<RouterState>,
    shutdown: Arc<AtomicBool>,
    addr: SocketAddr,
    max_line: usize,
) {
    let Ok(mut writer) = stream.try_clone() else {
        return;
    };
    let Ok(guard_stream) = stream.try_clone() else {
        return;
    };
    // Same discipline as the daemon: reach the socket past every clone
    // when this thread exits, including by unwinding.
    let _guard = ConnGuard(guard_stream);
    let mut reader = BufReader::new(stream);
    // Per-shard cached connections for this client connection.
    let mut conns: Vec<Option<(usize, TcpStream, BufReader<TcpStream>)>> =
        (0..state.map.len()).map(|_| None).collect();
    loop {
        let read = match read_line_capped(&mut reader, max_line) {
            Ok(read) => read,
            Err(_) => return,
        };
        let line = match read {
            LineRead::Eof { .. } => return,
            LineRead::Oversized | LineRead::NotUtf8 => {
                let err = match read {
                    LineRead::Oversized => SoiError::protocol(
                        ProtoErrorKind::OversizedLine,
                        format!("request line exceeds {max_line} bytes"),
                    ),
                    _ => SoiError::protocol(
                        ProtoErrorKind::MalformedJson,
                        "request line is not valid UTF-8",
                    ),
                };
                let resp = protocol::encode_error(None, &err);
                if writeln!(writer, "{resp}")
                    .and_then(|()| writer.flush())
                    .is_err()
                {
                    return;
                }
                continue;
            }
            LineRead::Line(line) => line,
        };
        if line.trim().is_empty() {
            continue;
        }
        soi_obs::counter_add!("router.requests_total", 1);
        let started = Instant::now();
        let (response, is_shutdown) = match protocol::parse_request(&line) {
            Err(err) => (protocol::encode_error(None, &err), false),
            Ok(envelope) if envelope.req.is_control() => {
                let is_shutdown = envelope.req == Request::Shutdown;
                let mut resp = control_response(&state, envelope.id, &envelope.req);
                let wall_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                if let Some(stripped) = resp.strip_suffix("\"wall_ns\":0}") {
                    resp = format!("{stripped}\"wall_ns\":{wall_ns}}}");
                }
                (resp, is_shutdown)
            }
            Ok(envelope) => {
                // Compute requests always name a graph (the parser
                // enforced it); resolve and relay the raw line so the
                // shard's bytes are the client's bytes.
                let graph = envelope.req.graph().unwrap_or_default();
                let shard_idx = state.map.shard_for(graph);
                let answer = forward(&state, &mut conns[shard_idx], shard_idx, envelope.id, &line);
                match answer {
                    Forwarded::Relay(line) | Forwarded::Synthesized(line) => (line, false),
                }
            }
        };
        soi_util::failpoint_crash!("router.response.write");
        if writeln!(writer, "{response}")
            .and_then(|()| writer.flush())
            .is_err()
        {
            return;
        }
        if is_shutdown {
            // ordering: SeqCst on a once-per-process control flag; the
            // cold path favors clarity (same as the daemon).
            shutdown.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(addr);
        }
    }
}

/// See [`crate::daemon`]: shuts the socket down when the connection
/// thread exits, past every clone.
struct ConnGuard(TcpStream);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        let _ = self.0.shutdown(Shutdown::Both);
    }
}

/// Runs the router until a `shutdown` request arrives. Announces the
/// bound address on `out` as `listening on HOST:PORT`, then routes.
pub fn run_router<W: Write>(config: &RouterConfig, out: &mut W) -> Result<(), SoiError> {
    if config.shards.is_empty() {
        return Err(SoiError::invalid("router needs at least one shard"));
    }
    for replicas in &config.shards {
        for addr in replicas {
            if split_addr(addr).is_none() {
                return Err(SoiError::invalid(format!(
                    "bad replica address {addr:?} (want host:port)"
                )));
            }
        }
    }
    let listener = TcpListener::bind(("127.0.0.1", config.port))
        .map_err(|e| SoiError::io("bind 127.0.0.1", e))?;
    let addr = listener
        .local_addr()
        .map_err(|e| SoiError::io("local_addr", e))?;
    // Touch every router counter so 0 is reported, not absent.
    soi_obs::counter_add!("router.requests_total", 0);
    soi_obs::counter_add!("router.forwarded", 0);
    soi_obs::counter_add!("router.forward_retries", 0);
    soi_obs::counter_add!("router.failovers", 0);
    soi_obs::counter_add!("router.shard_unavailable", 0);
    soi_obs::counter_add!("router.requests_shed", 0);
    soi_obs::counter_add!("router.rebalances", 0);
    soi_obs::counter_add!("router.protocol_mismatches", 0);
    soi_obs::counter_add!("router.override_persist_errors", 0);
    soi_obs::counter_add!("router.probe_attempts", 0);
    soi_obs::counter_add!("router.probe_recoveries", 0);
    soi_obs::gauge("router.replicas_unhealthy").set(0.0);
    let layout_fp = layout_fingerprint(&config.shards);
    let map = ShardMap::new(config.shards.clone());
    if let Some(path) = &config.overrides_path {
        let overrides = load_overrides_file(path, layout_fp)?;
        if !overrides.is_empty() {
            soi_obs::event!(
                soi_obs::Level::Info,
                "restored {} rebalance override(s) from {}",
                overrides.len(),
                path.display()
            );
        }
        map.load_overrides(overrides).map_err(SoiError::invalid)?;
    }
    let state = Arc::new(RouterState {
        map,
        replica_retries: config.replica_retries,
        backoff_ticks: config.backoff_ticks,
        persist: config.overrides_path.clone().map(|path| (path, layout_fp)),
    });
    soi_obs::event!(
        soi_obs::Level::Info,
        "routing {} shard(s) on {addr}",
        state.map.len()
    );
    writeln!(out, "listening on {addr}").map_err(|e| SoiError::io("stdout", e))?;
    out.flush().map_err(|e| SoiError::io("stdout", e))?;

    let shutdown = Arc::new(AtomicBool::new(false));
    let probe_thread = (config.probe_interval_ms > 0).then(|| {
        let state = Arc::clone(&state);
        let shutdown = Arc::clone(&shutdown);
        let interval = Duration::from_millis(config.probe_interval_ms);
        std::thread::spawn(move || {
            // ordering: SeqCst pairs with the shutdown store; one load
            // per probe period is not a hot path.
            while !shutdown.load(Ordering::SeqCst) {
                probe_sweep(&state);
                // Sleep in small slices so shutdown is not delayed by
                // up to a whole probe period.
                let mut slept = Duration::ZERO;
                // ordering: SeqCst pairs with the shutdown store, as above.
                while slept < interval && !shutdown.load(Ordering::SeqCst) {
                    let step = (interval - slept).min(Duration::from_millis(20));
                    std::thread::sleep(step);
                    slept += step;
                }
            }
        })
    });
    let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
    let mut conn_threads = Vec::new();
    for stream in listener.incoming() {
        // ordering: SeqCst pairs with the store in the shutdown step.
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else {
            continue;
        };
        if let Ok(clone) = stream.try_clone() {
            conns
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(clone);
        }
        let state = Arc::clone(&state);
        let shutdown = Arc::clone(&shutdown);
        let max_line = config.max_line;
        conn_threads.push(std::thread::spawn(move || {
            handle_conn(stream, state, shutdown, addr, max_line);
        }));
    }
    drop(listener);

    // Graceful drain: stop reading new requests; in-flight relays have
    // already resolved their shard and complete normally.
    for stream in conns.lock().unwrap_or_else(PoisonError::into_inner).iter() {
        let _ = stream.shutdown(Shutdown::Read);
    }
    for thread in conn_threads {
        let _ = thread.join();
    }
    if let Some(thread) = probe_thread {
        let _ = thread.join();
    }
    soi_obs::event!(soi_obs::Level::Info, "router drained; shutting down");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_split_round_trips() {
        assert_eq!(split_addr("127.0.0.1:8080"), Some(("127.0.0.1", 8080)));
        assert_eq!(split_addr("localhost:1"), Some(("localhost", 1)));
        assert_eq!(split_addr("no-port"), None);
        assert_eq!(split_addr("bad:port"), None);
    }

    #[test]
    fn queue_full_detail_reads_the_structured_fields() {
        let line = protocol::encode_queue_full(4, 8, 32);
        assert_eq!(queue_full_detail(&line), Some((8, 32)));
        assert_eq!(queue_full_detail("{\"v\":1,\"status\":\"ok\"}"), None);
    }

    #[test]
    fn v2_sections_surgery_removes_exactly_the_counters_object() {
        let cut = v2_sections_without_counters();
        assert!(!cut.contains("\"counters\":{"), "{cut}");
        for kept in ["\"stats_version\":", "\"gauges\":{", "\"timing_hists\":{"] {
            assert!(cut.contains(kept), "missing {kept} in {cut}");
        }
        // The spliced fragment still parses when wrapped as an object.
        crate::json::parse(&format!("{{{cut}}}")).expect("spliced sections parse");
    }

    #[test]
    fn overrides_round_trip_through_the_checkpoint_file() {
        let dir = std::env::temp_dir().join(format!("soi-router-ovr-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("overrides.ckpt");
        let layout = vec![
            vec!["127.0.0.1:9000".to_string()],
            vec!["127.0.0.1:9010".to_string(), "127.0.0.1:9011".to_string()],
        ];
        let fp = layout_fingerprint(&layout);
        // Missing file reads back as an empty table (first boot).
        assert!(load_overrides_file(&path, fp).unwrap().is_empty());
        let mut table = BTreeMap::new();
        table.insert("net".to_string(), 1usize);
        table.insert("soc-epinions".to_string(), 0usize);
        save_overrides(&path, fp, &table).unwrap();
        assert_eq!(load_overrides_file(&path, fp).unwrap(), table);
        // A different shard layout refuses the file outright.
        let other = layout_fingerprint(&[vec!["127.0.0.1:9000".to_string()]]);
        assert_ne!(fp, other);
        let err = load_overrides_file(&path, other).unwrap_err();
        assert!(matches!(err, SoiError::CkptMismatch { .. }), "{err:?}");
        // Corruption is caught by the checkpoint checksum.
        let mut bytes = std::fs::read(&path).unwrap();
        let at = bytes.len() - 12;
        bytes[at] ^= 0x40;
        std::fs::write(&path, bytes).unwrap();
        assert!(load_overrides_file(&path, fp).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn override_decode_rejects_trailing_bytes() {
        let mut table = BTreeMap::new();
        table.insert("g".to_string(), 0usize);
        let mut payload = encode_overrides(&table);
        assert_eq!(decode_overrides(&payload).unwrap(), table);
        payload.push(0);
        assert!(decode_overrides(&payload).is_err(), "trailing byte");
    }

    #[test]
    fn layout_fingerprint_separates_address_boundaries() {
        // Same concatenated bytes, different replica split — must differ.
        let a = layout_fingerprint(&[vec!["ab:1".to_string(), "c:2".to_string()]]);
        let b = layout_fingerprint(&[vec!["ab:1c".to_string(), ":2".to_string()]]);
        assert_ne!(a, b);
    }

    #[test]
    fn bad_configs_are_rejected_before_binding() {
        let mut out = Vec::new();
        let err = run_router(&RouterConfig::default(), &mut out).expect_err("no shards");
        assert!(err.to_string().contains("at least one shard"));
        let config = RouterConfig {
            shards: vec![vec!["nonsense".into()]],
            ..RouterConfig::default()
        };
        let err = run_router(&config, &mut out).expect_err("bad addr");
        assert!(err.to_string().contains("nonsense"), "{err}");
    }
}
