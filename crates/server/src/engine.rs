//! The server-side query engine: loaded graphs, warm index cache, and
//! request execution under a per-request deadline.
//!
//! Graphs are loaded once at startup and shared immutably. Cascade
//! indexes are built on first use (or eagerly via
//! [`ServerEngine::warm`]) and kept in an LRU cache keyed by
//! [`CascadeIndex::cache_key`], so repeated queries against the same
//! graph reuse the ℓ sampled worlds instead of resampling — the whole
//! point of a long-lived daemon over one-shot CLI runs.
//!
//! Deadlines are deterministic tick budgets ([`Deadline`]): a query that
//! runs out of budget returns a well-formed `partial` response covering
//! the exact prefix of work completed, never a stalled worker.

use crate::json::fmt_num;
use crate::protocol::Request;
use crate::trace::PhaseTrace;
use soi_core::EngineRunOpts;
use soi_graph::ProbGraph;
use soi_index::{CascadeIndex, IndexConfig};
use soi_influence::{BackendKind, SpreadBackend};
use soi_jaccard::median::MedianConfig;
use soi_sketch::{ReachSketches, SketchConfig};
use soi_util::hash::Mix64Hasher;
use soi_util::runtime::{Deadline, Outcome, StopReason};
use soi_util::{ProtoErrorKind, SoiError};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, PoisonError};

/// Engine-level options fixed at startup.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Worlds ℓ per cascade index.
    pub num_worlds: usize,
    /// Master sampling seed for index builds.
    pub seed: u64,
    /// Apply transitive reduction to indexed worlds.
    pub transitive_reduction: bool,
    /// Threads per index build / batch solve (0 = pool default).
    pub threads: usize,
    /// Jaccard-median tuning shared by all queries.
    pub median: MedianConfig,
    /// LRU capacity of the index cache.
    pub cache_cap: usize,
    /// Default per-request tick budget (0 = unlimited) applied when a
    /// request carries no `deadline_ticks`.
    pub default_deadline_ticks: u64,
    /// Default sketch size `k` for `"backend":"sketch"` requests that
    /// carry no `sketch_k` override.
    pub sketch_k: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            num_worlds: 256,
            seed: 42,
            transitive_reduction: true,
            threads: 0,
            median: MedianConfig::default(),
            cache_cap: 4,
            default_deadline_ticks: 0,
            sketch_k: 64,
        }
    }
}

/// The outcome of executing one compute request: a pre-encoded JSON
/// payload fragment plus partial-progress accounting when a deadline
/// cut the work short.
#[derive(Clone, Debug, PartialEq)]
pub struct ExecOutput {
    /// JSON fragment (`"key":value,...`) for the response body.
    pub payload: String,
    /// `Some((done, total, reason))` when the result covers a prefix.
    pub partial: Option<(u64, u64, StopReason)>,
}

impl ExecOutput {
    fn complete(payload: String) -> Self {
        ExecOutput {
            payload,
            partial: None,
        }
    }

    fn from_outcome<T>(outcome: &Outcome<T>, payload: String) -> Self {
        match outcome {
            Outcome::Completed(_) => ExecOutput::complete(payload),
            Outcome::Partial {
                progress, reason, ..
            } => ExecOutput {
                payload,
                partial: Some((progress.done, progress.total, *reason)),
            },
        }
    }
}

/// Loaded graphs plus the warm spread-oracle cache.
pub struct ServerEngine {
    graphs: BTreeMap<String, Arc<ProbGraph>>,
    /// One LRU for both backends. Keys mix the backend tag into the
    /// backend-specific cache key ([`mixed_key`]), so the key is
    /// (graph fingerprint, backend, build params) and a sketch entry can
    /// never serve a cascade request or vice versa.
    cache: Mutex<crate::cache::LruCache<SpreadBackend>>,
    /// Last successfully built oracle per (graph *name*, backend tag,
    /// sketch k — 0 for cascade), regardless of fingerprint: the stale
    /// fallback served (explicitly flagged) when a fresh build fails and
    /// the request opted into degradation.
    last_good: Mutex<BTreeMap<(String, u8, u64), SpreadBackend>>,
    config: EngineConfig,
}

/// Folds the backend tag into a backend-specific cache key. Both inner
/// keys already mix the graph fingerprint and build parameters; the tag
/// keeps the two key spaces disjoint in the shared LRU.
fn mixed_key(kind: BackendKind, inner: u64) -> u64 {
    let mut h = Mix64Hasher::new();
    h.update_u64(u64::from(kind.tag()));
    h.update_u64(inner);
    h.finish()
}

/// The `k` component of a last-good key: sketch entries are keyed by
/// their sketch size (a different `k` is a different oracle), cascade
/// entries have no such parameter and use 0.
fn last_good_k(kind: BackendKind, k: usize) -> u64 {
    match kind {
        BackendKind::Cascade => 0,
        BackendKind::Sketch => k as u64,
    }
}

impl ServerEngine {
    /// An engine with no graphs loaded yet.
    pub fn new(config: EngineConfig) -> Self {
        ServerEngine {
            graphs: BTreeMap::new(),
            cache: Mutex::new(crate::cache::LruCache::new(config.cache_cap)),
            last_good: Mutex::new(BTreeMap::new()),
            config,
        }
    }

    /// Registers a graph under `name` (replacing any previous binding —
    /// the cache key includes the graph fingerprint, so stale indexes
    /// can never serve the new graph).
    pub fn add_graph(&mut self, name: impl Into<String>, pg: ProbGraph) {
        self.graphs.insert(name.into(), Arc::new(pg));
    }

    /// Names of the loaded graphs, sorted.
    pub fn graph_names(&self) -> Vec<&str> {
        self.graphs.keys().map(String::as_str).collect()
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Eagerly builds the index of every loaded graph so the first
    /// query doesn't pay the build. Returns the number of indexes built.
    pub fn warm(&self) -> usize {
        let names: Vec<String> = self.graphs.keys().cloned().collect();
        let mut built = 0;
        for name in names {
            if self.index_for(&name).is_ok() {
                built += 1;
            }
        }
        built
    }

    fn index_config(&self) -> IndexConfig {
        IndexConfig {
            num_worlds: self.config.num_worlds,
            seed: self.config.seed,
            transitive_reduction: self.config.transitive_reduction,
            threads: self.config.threads,
        }
    }

    /// Sketch build parameters: the same ℓ worlds and master seed as the
    /// cascade index, with the request's (or server's default) `k`.
    fn sketch_config(&self, k: usize) -> SketchConfig {
        SketchConfig {
            num_worlds: self.config.num_worlds,
            k,
            seed: self.config.seed,
            threads: self.config.threads,
        }
    }

    fn graph(&self, name: &str) -> Result<&Arc<ProbGraph>, SoiError> {
        self.graphs.get(name).ok_or_else(|| {
            SoiError::protocol(
                ProtoErrorKind::UnknownGraph,
                format!("graph {name:?} is not loaded"),
            )
        })
    }

    /// The warm index for `name`, building (and caching) it on a miss.
    pub fn index_for(&self, name: &str) -> Result<Arc<CascadeIndex>, SoiError> {
        self.index_for_degraded(name, false).map(|(index, _)| index)
    }

    /// [`Self::index_for`] with opt-in degradation: when a fresh build
    /// fails and `degrade` is set, the last successfully built index for
    /// this graph name is served instead, flagged by the `true` half of
    /// the return value — stale results are never silently substituted.
    pub fn index_for_degraded(
        &self,
        name: &str,
        degrade: bool,
    ) -> Result<(Arc<CascadeIndex>, bool), SoiError> {
        self.index_for_traced(name, degrade)
            .map(|(index, degraded, _)| (index, degraded))
    }

    /// [`Self::index_for_degraded`] additionally reporting whether this
    /// call *built* the index (the final `bool`): a cold `cache` phase
    /// costs `num_worlds` deterministic ticks, a hit costs zero.
    fn index_for_traced(
        &self,
        name: &str,
        degrade: bool,
    ) -> Result<(Arc<CascadeIndex>, bool, bool), SoiError> {
        let (backend, degraded, built) =
            self.backend_for_traced(name, BackendKind::Cascade, None, degrade)?;
        match backend {
            SpreadBackend::Cascade(index) => Ok((index, degraded, built)),
            // The cache key folds in the backend tag, so a cascade
            // lookup can only ever yield a cascade entry.
            // xtask-allow: panic_policy
            SpreadBackend::Sketch(_) => unreachable!("cascade lookup returned a sketch"),
        }
    }

    /// The warm spread oracle for (`name`, `kind`, `sketch_k`), building
    /// and caching it on a miss. Returns (oracle, degraded, built):
    /// `degraded` flags a stale same-backend fallback, `built` reports
    /// whether this call paid a build (a cold `cache` phase costs
    /// `num_worlds` deterministic ticks, a hit costs zero).
    fn backend_for_traced(
        &self,
        name: &str,
        kind: BackendKind,
        sketch_k: Option<usize>,
        degrade: bool,
    ) -> Result<(SpreadBackend, bool, bool), SoiError> {
        let pg = self.graph(name)?;
        let k = sketch_k.unwrap_or(self.config.sketch_k);
        let inner = match kind {
            BackendKind::Cascade => CascadeIndex::cache_key(pg, &self.index_config()),
            BackendKind::Sketch => ReachSketches::cache_key(pg, &self.sketch_config(k)),
        };
        let key = mixed_key(kind, inner);
        let last_key = (name.to_string(), kind.tag(), last_good_k(kind, k));
        {
            // Waiting on the cache mutex is the engine's contention
            // point; attribute it to this worker's lock-wait slot.
            let mut cache =
                soi_obs::perthread::timed_region(soi_obs::perthread::record_lock_wait, || {
                    self.cache.lock().unwrap_or_else(PoisonError::into_inner)
                });
            if let Some(entry) = cache.get(key) {
                soi_obs::counter_add!("server.cache_hits", 1);
                return Ok(((*entry).clone(), false, false));
            }
        }
        soi_obs::counter_add!("server.cache_misses", 1);
        match self.build_backend(pg, kind, k, key, &last_key) {
            Ok(backend) => Ok((backend, false, true)),
            Err(err) => {
                if degrade {
                    let stale = {
                        let last = self
                            .last_good
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner);
                        last.get(&last_key).cloned()
                    };
                    if let Some(backend) = stale {
                        soi_obs::counter_add!("server.requests_degraded", 1);
                        return Ok((backend, true, false));
                    }
                }
                Err(err)
            }
        }
    }

    fn build_backend(
        &self,
        pg: &Arc<ProbGraph>,
        kind: BackendKind,
        k: usize,
        key: u64,
        last_key: &(String, u8, u64),
    ) -> Result<SpreadBackend, SoiError> {
        // Built outside the cache lock: a slow build must not stall
        // queries against already-cached graphs.
        let backend = match kind {
            BackendKind::Cascade => {
                soi_util::failpoint!("server.index.build");
                let _span = soi_obs::span("server.index_build");
                SpreadBackend::Cascade(Arc::new(CascadeIndex::build(pg, self.index_config())))
            }
            BackendKind::Sketch => {
                soi_util::failpoint!("server.sketch.build");
                let _span = soi_obs::span("server.sketch_build");
                SpreadBackend::Sketch(Arc::new(ReachSketches::build(pg, self.sketch_config(k))))
            }
        };
        soi_util::failpoint_crash!("server.cache.insert");
        {
            let mut cache = self.cache.lock().unwrap_or_else(PoisonError::into_inner);
            cache.insert(key, Arc::new(backend.clone()));
        }
        let mut last = self
            .last_good
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        last.insert(last_key.clone(), backend.clone());
        Ok(backend)
    }

    fn deadline(&self, requested: Option<u64>) -> Deadline {
        match requested.unwrap_or(self.config.default_deadline_ticks) {
            0 => Deadline::unlimited(),
            ticks => Deadline::ticks(ticks),
        }
    }

    /// Executes one compute request, producing the response payload.
    /// Control requests ([`Request::is_control`]) are not handled here.
    pub fn execute(&self, req: &Request) -> Result<ExecOutput, SoiError> {
        let mut trace = PhaseTrace::new();
        self.execute_traced(req, &mut trace)
    }

    /// [`Self::execute`] additionally recording the request's `cache`
    /// and `compute` phases into `trace`. Tick costs are deterministic
    /// work proxies: a cold `cache` phase costs `num_worlds` (the worlds
    /// sampled by the build; a hit costs 0), `compute` costs 1 per
    /// typical-cascade fit, one per Monte-Carlo sample run, or `k` per
    /// seed selected. Wall time is measured alongside and lives only in
    /// the phases' `wall_ns`. Error returns leave `trace` at whatever
    /// prefix of phases completed — error responses carry no trace.
    pub fn execute_traced(
        &self,
        req: &Request,
        trace: &mut PhaseTrace,
    ) -> Result<ExecOutput, SoiError> {
        match req {
            Request::TypicalCascade {
                graph,
                source,
                deadline_ticks,
                degrade,
            } => {
                let cache_start = std::time::Instant::now();
                let (index, degraded, built) = self.index_for_traced(graph, *degrade)?;
                trace.record(
                    "cache",
                    if built {
                        self.config.num_worlds as u64
                    } else {
                        0
                    },
                    crate::trace::elapsed_ns(cache_start),
                );
                if (*source as usize) >= index.num_nodes() {
                    return Err(SoiError::protocol(
                        ProtoErrorKind::BadField,
                        format!(
                            "source {source} out of range (graph has {} nodes)",
                            index.num_nodes()
                        ),
                    ));
                }
                let deadline = self.deadline(*deadline_ticks);
                let compute_start = std::time::Instant::now();
                let samples = index.cascades_of(*source);
                let outcome = soi_jaccard::median::jaccard_median_budgeted(
                    &samples,
                    &self.config.median,
                    &deadline,
                );
                let fit = outcome.value_ref();
                let payload = format!(
                    "\"sphere\":{},\"cost\":{}{}",
                    encode_nodes(&fit.median),
                    fmt_num(fit.cost),
                    degraded_suffix(degraded, "stale-index")
                );
                trace.record("compute", 1, crate::trace::elapsed_ns(compute_start));
                Ok(ExecOutput::from_outcome(&outcome, payload))
            }
            Request::SpreadEstimate {
                graph,
                seeds,
                samples,
                seed,
                deadline_ticks,
                degrade,
                backend,
                sketch_k,
            } => {
                let pg = self.graph(graph)?;
                if let Some(&bad) = seeds.iter().find(|&&s| (s as usize) >= pg.num_nodes()) {
                    return Err(SoiError::protocol(
                        ProtoErrorKind::BadField,
                        format!(
                            "seed {bad} out of range (graph has {} nodes)",
                            pg.num_nodes()
                        ),
                    ));
                }
                if *backend == BackendKind::Sketch {
                    // The sketch backend answers from the warm sketches:
                    // the cache phase carries the (possible) build, the
                    // estimator itself is one O(seeds · k) evaluation.
                    let cache_start = std::time::Instant::now();
                    let (oracle, degraded, built) =
                        self.backend_for_traced(graph, BackendKind::Sketch, *sketch_k, *degrade)?;
                    trace.record(
                        "cache",
                        if built {
                            self.config.num_worlds as u64
                        } else {
                            0
                        },
                        crate::trace::elapsed_ns(cache_start),
                    );
                    let SpreadBackend::Sketch(sk) = &oracle else {
                        return Err(SoiError::invalid("sketch lookup returned a cascade index"));
                    };
                    let compute_start = std::time::Instant::now();
                    let spread = sk.set_spread(seeds);
                    let payload = format!(
                        "\"spread\":{},\"backend\":\"sketch\"{}",
                        fmt_num(spread),
                        degraded_suffix(degraded, "stale-sketch")
                    );
                    trace.record("compute", 1, crate::trace::elapsed_ns(compute_start));
                    return Ok(ExecOutput::complete(payload));
                }
                // Cascade spread estimates never touch the oracle cache;
                // the phase is recorded at zero cost so every compute
                // request shares one timeline schema.
                trace.record("cache", 0, 0);
                let budget = deadline_ticks.unwrap_or(self.config.default_deadline_ticks);
                if *degrade && budget > 0 && (budget as usize) < *samples {
                    // Degrade instead of going partial: answer with the
                    // sample count the budget affords, run to completion.
                    // Same seed + a prefix-sized count keeps the reduced
                    // answer deterministic.
                    let reduced = budget as usize;
                    let compute_start = std::time::Instant::now();
                    let outcome = soi_sampling::estimate_spread_budgeted(
                        pg,
                        seeds,
                        reduced,
                        *seed,
                        &Deadline::unlimited(),
                    );
                    soi_obs::counter_add!("server.requests_degraded", 1);
                    let payload = format!(
                        "\"spread\":{},\"samples_used\":{reduced}{}",
                        fmt_num(*outcome.value_ref()),
                        degraded_suffix(true, "reduced-samples")
                    );
                    trace.record(
                        "compute",
                        reduced as u64,
                        crate::trace::elapsed_ns(compute_start),
                    );
                    return Ok(ExecOutput::complete(payload));
                }
                let deadline = self.deadline(*deadline_ticks);
                let compute_start = std::time::Instant::now();
                let outcome =
                    soi_sampling::estimate_spread_budgeted(pg, seeds, *samples, *seed, &deadline);
                let payload = format!("\"spread\":{}", fmt_num(*outcome.value_ref()));
                trace.record(
                    "compute",
                    *samples as u64,
                    crate::trace::elapsed_ns(compute_start),
                );
                Ok(ExecOutput::from_outcome(&outcome, payload))
            }
            Request::InfmaxTc {
                graph,
                k,
                deadline_ticks,
                degrade,
                backend,
                sketch_k,
            } => {
                if *backend == BackendKind::Sketch {
                    return self.execute_infmax_sketch(
                        graph,
                        *k,
                        *deadline_ticks,
                        *degrade,
                        *sketch_k,
                        trace,
                    );
                }
                let cache_start = std::time::Instant::now();
                let (index, degraded, built) = self.index_for_traced(graph, *degrade)?;
                trace.record(
                    "cache",
                    if built {
                        self.config.num_worlds as u64
                    } else {
                        0
                    },
                    crate::trace::elapsed_ns(cache_start),
                );
                let deadline = self.deadline(*deadline_ticks);
                let compute_start = std::time::Instant::now();
                let opts = EngineRunOpts {
                    deadline: &deadline,
                    checkpoint: None,
                    checkpoint_every: 64,
                    resume: false,
                };
                let outcome = soi_core::all_typical_cascades_resumable(
                    &index,
                    &self.config.median,
                    self.config.threads,
                    &opts,
                )?;
                let spheres: Vec<Vec<u32>> = outcome
                    .value_ref()
                    .iter()
                    .map(|tc| tc.median.clone())
                    .collect();
                let run = soi_influence::infmax_tc(&spheres, *k, 0);
                let coverage: Vec<String> =
                    run.coverage_curve.iter().map(|&c| fmt_num(c)).collect();
                let payload = format!(
                    "\"seeds\":{},\"coverage\":[{}]{}",
                    encode_nodes(&run.seeds),
                    coverage.join(","),
                    degraded_suffix(degraded, "stale-index")
                );
                trace.record(
                    "compute",
                    *k as u64,
                    crate::trace::elapsed_ns(compute_start),
                );
                Ok(ExecOutput::from_outcome(&outcome, payload))
            }
            control => Err(SoiError::invalid(format!(
                "control request {:?} routed to the compute engine",
                control.type_name()
            ))),
        }
    }

    /// `infmax-tc` with `"backend":"sketch"`: SKIM-style greedy over the
    /// warm sketches, one deadline tick per seed selected.
    fn execute_infmax_sketch(
        &self,
        graph: &str,
        k: usize,
        deadline_ticks: Option<u64>,
        degrade: bool,
        sketch_k: Option<usize>,
        trace: &mut PhaseTrace,
    ) -> Result<ExecOutput, SoiError> {
        let cache_start = std::time::Instant::now();
        let (oracle, degraded, built) =
            self.backend_for_traced(graph, BackendKind::Sketch, sketch_k, degrade)?;
        trace.record(
            "cache",
            if built {
                self.config.num_worlds as u64
            } else {
                0
            },
            crate::trace::elapsed_ns(cache_start),
        );
        let SpreadBackend::Sketch(sk) = &oracle else {
            return Err(SoiError::invalid("sketch lookup returned a cascade index"));
        };
        let pg = self.graph(graph)?;
        if sk.graph_fingerprint() != pg.fingerprint() {
            // A stale sketch from a different graph revision cannot
            // drive selection: the coverage BFS re-derives the worlds
            // the sketches were built over, which belong to the old
            // graph. Fail typed instead of answering wrong.
            return Err(SoiError::protocol(
                ProtoErrorKind::Internal,
                "stale sketch does not match the loaded graph; seed selection cannot degrade",
            ));
        }
        let deadline = self.deadline(deadline_ticks);
        let compute_start = std::time::Instant::now();
        let outcome = soi_sketch::select_seeds(pg, sk, k, &deadline);
        let run = outcome.value_ref();
        let coverage: Vec<String> = run.coverage.iter().map(|&c| fmt_num(c)).collect();
        let payload = format!(
            "\"seeds\":{},\"coverage\":[{}],\"backend\":\"sketch\"{}",
            encode_nodes(&run.seeds),
            coverage.join(","),
            degraded_suffix(degraded, "stale-sketch")
        );
        trace.record("compute", k as u64, crate::trace::elapsed_ns(compute_start));
        Ok(ExecOutput::from_outcome(&outcome, payload))
    }
}

fn encode_nodes(nodes: &[u32]) -> String {
    let items: Vec<String> = nodes.iter().map(|n| n.to_string()).collect();
    format!("[{}]", items.join(","))
}

/// The payload suffix flagging a degraded answer (empty when the answer
/// is fresh): degradation is always explicit on the wire.
fn degraded_suffix(degraded: bool, mode: &str) -> String {
    if degraded {
        format!(",\"degraded\":true,\"degraded_mode\":\"{mode}\"")
    } else {
        String::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_graph::gen;

    fn engine() -> ServerEngine {
        let mut rng = soi_util::rng::Xoshiro256pp::seed_from_u64(7);
        let pg = ProbGraph::fixed(gen::gnm(40, 160, &mut rng), 0.4).expect("graph");
        let mut engine = ServerEngine::new(EngineConfig {
            num_worlds: 16,
            seed: 3,
            cache_cap: 2,
            ..EngineConfig::default()
        });
        engine.add_graph("g", pg);
        engine
    }

    #[test]
    fn typical_cascade_is_deterministic() {
        let _g = soi_util::failpoint::test_guard();
        let engine = engine();
        let req = Request::TypicalCascade {
            graph: "g".into(),
            source: 5,
            deadline_ticks: None,
            degrade: false,
        };
        let a = engine.execute(&req).expect("exec");
        let b = engine.execute(&req).expect("exec");
        assert_eq!(a, b);
        assert!(a.partial.is_none());
        assert!(a.payload.starts_with("\"sphere\":["), "{}", a.payload);
    }

    #[test]
    fn spread_deadline_yields_partial_prefix() {
        let engine = engine();
        let full = Request::SpreadEstimate {
            graph: "g".into(),
            seeds: vec![0, 1],
            samples: 64,
            seed: 9,
            deadline_ticks: None,
            degrade: false,
            backend: BackendKind::Cascade,
            sketch_k: None,
        };
        let capped = Request::SpreadEstimate {
            graph: "g".into(),
            seeds: vec![0, 1],
            samples: 64,
            seed: 9,
            deadline_ticks: Some(8),
            degrade: false,
            backend: BackendKind::Cascade,
            sketch_k: None,
        };
        let full = engine.execute(&full).expect("full");
        assert!(full.partial.is_none());
        let capped = engine.execute(&capped).expect("capped");
        let (done, total, reason) = capped.partial.expect("partial");
        assert_eq!(total, 64);
        assert!(done < total);
        assert_eq!(reason, StopReason::DeadlineExpired);
        // Partial value is the mean over the deterministic prefix.
        let again = engine.execute(&Request::SpreadEstimate {
            graph: "g".into(),
            seeds: vec![0, 1],
            samples: 64,
            seed: 9,
            deadline_ticks: Some(8),
            degrade: false,
            backend: BackendKind::Cascade,
            sketch_k: None,
        });
        assert_eq!(capped, again.expect("again"));
    }

    #[test]
    fn infmax_selects_k_seeds() {
        let _g = soi_util::failpoint::test_guard();
        let engine = engine();
        let out = engine
            .execute(&Request::InfmaxTc {
                graph: "g".into(),
                k: 3,
                deadline_ticks: None,
                degrade: false,
                backend: BackendKind::Cascade,
                sketch_k: None,
            })
            .expect("exec");
        assert!(out.partial.is_none());
        assert!(out.payload.contains("\"seeds\":["));
        assert!(out.payload.contains("\"coverage\":["));
    }

    #[test]
    fn unknown_graph_and_bad_fields_are_typed() {
        let _g = soi_util::failpoint::test_guard();
        let engine = engine();
        let err = engine
            .execute(&Request::TypicalCascade {
                graph: "missing".into(),
                source: 0,
                deadline_ticks: None,
                degrade: false,
            })
            .expect_err("unknown graph");
        assert!(matches!(
            err,
            SoiError::Protocol {
                kind: ProtoErrorKind::UnknownGraph,
                ..
            }
        ));
        let err = engine
            .execute(&Request::TypicalCascade {
                graph: "g".into(),
                source: 40,
                deadline_ticks: None,
                degrade: false,
            })
            .expect_err("out of range");
        assert!(matches!(
            err,
            SoiError::Protocol {
                kind: ProtoErrorKind::BadField,
                ..
            }
        ));
    }

    #[test]
    fn execute_traced_records_deterministic_phase_ticks() {
        let _g = soi_util::failpoint::test_guard();
        let engine = engine();
        let req = Request::TypicalCascade {
            graph: "g".into(),
            source: 5,
            deadline_ticks: None,
            degrade: false,
        };
        let mut cold = PhaseTrace::new();
        engine.execute_traced(&req, &mut cold).expect("cold");
        let names: Vec<&str> = cold.phases().iter().map(|p| p.name).collect();
        assert_eq!(names, ["cache", "compute"]);
        // Cold cache phase costs num_worlds ticks; the hit costs zero.
        assert_eq!(cold.phases()[0].ticks, 16);
        assert_eq!(cold.phases()[1].ticks, 1);
        let mut warm = PhaseTrace::new();
        engine.execute_traced(&req, &mut warm).expect("warm");
        assert_eq!(warm.phases()[0].ticks, 0);
        // Spread estimates cost one tick per sample and skip the cache.
        let mut spread = PhaseTrace::new();
        engine
            .execute_traced(
                &Request::SpreadEstimate {
                    graph: "g".into(),
                    seeds: vec![0, 1],
                    samples: 24,
                    seed: 9,
                    deadline_ticks: None,
                    degrade: false,
                    backend: BackendKind::Cascade,
                    sketch_k: None,
                },
                &mut spread,
            )
            .expect("spread");
        assert_eq!(
            spread.phases()[0],
            crate::trace::Phase {
                name: "cache",
                ticks: 0,
                wall_ns: 0,
            }
        );
        assert_eq!(spread.phases()[1].ticks, 24);
        // Seed selection costs k ticks.
        let mut infmax = PhaseTrace::new();
        engine
            .execute_traced(
                &Request::InfmaxTc {
                    graph: "g".into(),
                    k: 3,
                    deadline_ticks: None,
                    degrade: false,
                    backend: BackendKind::Cascade,
                    sketch_k: None,
                },
                &mut infmax,
            )
            .expect("infmax");
        assert_eq!(infmax.phases()[1].ticks, 3);
    }

    #[test]
    fn index_cache_hits_after_first_build() {
        let _g = soi_util::failpoint::test_guard();
        let engine = engine();
        let _ = engine.index_for("g").expect("build");
        let before = soi_obs::metrics::counter("server.cache_hits").get();
        let _ = engine.index_for("g").expect("cached");
        assert!(soi_obs::metrics::counter("server.cache_hits").get() > before);
    }

    #[test]
    fn degraded_spread_reduces_samples_deterministically() {
        let engine = engine();
        let degraded = Request::SpreadEstimate {
            graph: "g".into(),
            seeds: vec![0, 1],
            samples: 64,
            seed: 9,
            deadline_ticks: Some(8),
            degrade: true,
            backend: BackendKind::Cascade,
            sketch_k: None,
        };
        let out = engine.execute(&degraded).expect("degraded");
        assert!(out.partial.is_none(), "degraded answers are complete");
        assert!(
            out.payload
                .contains("\"degraded\":true,\"degraded_mode\":\"reduced-samples\""),
            "{}",
            out.payload
        );
        assert!(
            out.payload.contains("\"samples_used\":8"),
            "{}",
            out.payload
        );
        // Deterministic: same request, same degraded answer.
        assert_eq!(out, engine.execute(&degraded).expect("again"));
        // The reduced answer equals an honest 8-sample estimate.
        let honest = engine
            .execute(&Request::SpreadEstimate {
                graph: "g".into(),
                seeds: vec![0, 1],
                samples: 8,
                seed: 9,
                deadline_ticks: None,
                degrade: false,
                backend: BackendKind::Cascade,
                sketch_k: None,
            })
            .expect("honest");
        let spread_of = |p: &str| p.split(',').next().map(str::to_string);
        assert_eq!(spread_of(&out.payload), spread_of(&honest.payload));
        // An affordable budget does not degrade.
        let roomy = engine
            .execute(&Request::SpreadEstimate {
                graph: "g".into(),
                seeds: vec![0, 1],
                samples: 8,
                seed: 9,
                deadline_ticks: Some(64),
                degrade: true,
                backend: BackendKind::Cascade,
                sketch_k: None,
            })
            .expect("roomy");
        assert!(!roomy.payload.contains("degraded"), "{}", roomy.payload);
    }

    #[test]
    fn stale_index_serves_flagged_when_build_fails() {
        let _g = soi_util::failpoint::test_guard();
        soi_util::failpoint::clear();
        let engine = engine();
        // Warm the last-known-good slot, then evict the cached entry by
        // swapping the graph (new fingerprint → cold cache key).
        let _ = engine.index_for("g").expect("first build");
        let mut engine = engine;
        let mut rng = soi_util::rng::Xoshiro256pp::seed_from_u64(11);
        let pg2 = ProbGraph::fixed(gen::gnm(40, 120, &mut rng), 0.3).expect("graph2");
        engine.add_graph("g", pg2);
        // Fresh builds now fail; without degrade the error is typed…
        soi_util::failpoint::install("server.index.build=error").expect("arm");
        let err = engine
            .execute(&Request::TypicalCascade {
                graph: "g".into(),
                source: 1,
                deadline_ticks: None,
                degrade: false,
            })
            .expect_err("build fails");
        assert!(matches!(err, SoiError::Fault { .. }), "{err}");
        // …with degrade the stale index answers, explicitly flagged.
        let out = engine
            .execute(&Request::TypicalCascade {
                graph: "g".into(),
                source: 1,
                deadline_ticks: None,
                degrade: true,
            })
            .expect("stale serve");
        assert!(
            out.payload
                .contains("\"degraded\":true,\"degraded_mode\":\"stale-index\""),
            "{}",
            out.payload
        );
        soi_util::failpoint::clear();
        // With the fault gone a fresh build wins again, unflagged.
        let fresh = engine
            .execute(&Request::TypicalCascade {
                graph: "g".into(),
                source: 1,
                deadline_ticks: None,
                degrade: true,
            })
            .expect("fresh");
        assert!(!fresh.payload.contains("degraded"), "{}", fresh.payload);
    }

    fn sketch_spread_req(sketch_k: Option<usize>) -> Request {
        Request::SpreadEstimate {
            graph: "g".into(),
            seeds: vec![0, 1],
            samples: 64,
            seed: 9,
            deadline_ticks: None,
            degrade: false,
            backend: BackendKind::Sketch,
            sketch_k,
        }
    }

    #[test]
    fn sketch_backend_answers_spread_deterministically() {
        let _g = soi_util::failpoint::test_guard();
        let engine = engine();
        let a = engine.execute(&sketch_spread_req(None)).expect("sketch");
        let b = engine.execute(&sketch_spread_req(None)).expect("again");
        assert_eq!(a, b);
        assert!(a.partial.is_none());
        assert!(
            a.payload.starts_with("\"spread\":") && a.payload.ends_with("\"backend\":\"sketch\""),
            "{}",
            a.payload
        );
        // The sketch answer tracks the Monte-Carlo answer on this graph.
        let mc = engine
            .execute(&Request::SpreadEstimate {
                graph: "g".into(),
                seeds: vec![0, 1],
                samples: 2000,
                seed: 9,
                deadline_ticks: None,
                degrade: false,
                backend: BackendKind::Cascade,
                sketch_k: None,
            })
            .expect("mc");
        let num = |p: &str| -> f64 {
            p.strip_prefix("\"spread\":")
                .and_then(|r| r.split(',').next())
                .and_then(|v| v.parse().ok())
                .expect("spread number")
        };
        let (sk, mc) = (num(&a.payload), num(&mc.payload));
        assert!(
            (sk - mc).abs() / mc.max(1.0) < 0.5,
            "sketch {sk} vs mc {mc}"
        );
    }

    #[test]
    fn sketch_backend_selects_seeds_with_backend_tag() {
        let _g = soi_util::failpoint::test_guard();
        let engine = engine();
        let req = Request::InfmaxTc {
            graph: "g".into(),
            k: 3,
            deadline_ticks: None,
            degrade: false,
            backend: BackendKind::Sketch,
            sketch_k: Some(32),
        };
        let mut trace = PhaseTrace::new();
        let a = engine.execute_traced(&req, &mut trace).expect("sketch");
        assert_eq!(a, engine.execute(&req).expect("again"));
        assert!(a.partial.is_none());
        assert!(
            a.payload.contains("\"seeds\":[") && a.payload.contains("\"backend\":\"sketch\""),
            "{}",
            a.payload
        );
        // Cold sketch build costs num_worlds cache ticks, selection k.
        assert_eq!(trace.phases()[0].ticks, 16);
        assert_eq!(trace.phases()[1].ticks, 3);
        // A capped budget yields a partial seed prefix.
        let capped = engine
            .execute(&Request::InfmaxTc {
                graph: "g".into(),
                k: 3,
                deadline_ticks: Some(2),
                degrade: false,
                backend: BackendKind::Sketch,
                sketch_k: Some(32),
            })
            .expect("capped");
        let (done, total, _) = capped.partial.expect("partial");
        assert_eq!((done, total), (2, 3));
    }

    #[test]
    fn cache_keeps_backends_and_params_disjoint() {
        let _g = soi_util::failpoint::test_guard();
        // Room for all three oracle identities at once (the shared
        // fixture's cap of 2 would evict the first one).
        let mut engine = {
            let mut rng = soi_util::rng::Xoshiro256pp::seed_from_u64(7);
            let pg = ProbGraph::fixed(gen::gnm(40, 160, &mut rng), 0.4).expect("graph");
            let mut e = ServerEngine::new(EngineConfig {
                num_worlds: 16,
                seed: 3,
                cache_cap: 4,
                ..EngineConfig::default()
            });
            e.add_graph("g", pg);
            e
        };
        let engine = &mut engine;
        let misses = || soi_obs::metrics::counter("server.cache_misses").get();
        let hits = || soi_obs::metrics::counter("server.cache_hits").get();
        let m0 = misses();
        // Same graph, four oracle identities: cascade, sketch k=default,
        // sketch k=32 — each is its own cache entry…
        let _ = engine.execute(&sketch_spread_req(None)).expect("sketch");
        let _ = engine
            .execute(&Request::TypicalCascade {
                graph: "g".into(),
                source: 0,
                deadline_ticks: None,
                degrade: false,
            })
            .expect("cascade");
        let _ = engine.execute(&sketch_spread_req(Some(32))).expect("k=32");
        assert_eq!(misses() - m0, 3, "three distinct oracles, three builds");
        // …and repeats hit their own entry without rebuilding.
        let h0 = hits();
        let _ = engine.execute(&sketch_spread_req(None)).expect("warm");
        let _ = engine.execute(&sketch_spread_req(Some(32))).expect("warm");
        assert_eq!(hits() - h0, 2);
        assert_eq!(misses() - m0, 3);
    }

    #[test]
    fn sketch_build_failure_degrades_to_stale_sketch_or_fails_typed() {
        let _g = soi_util::failpoint::test_guard();
        soi_util::failpoint::clear();
        let engine = engine();
        // Warm the sketch last-good slot, then arm the build failpoint.
        let _ = engine.execute(&sketch_spread_req(None)).expect("warm");
        let mut engine = engine;
        let mut rng = soi_util::rng::Xoshiro256pp::seed_from_u64(13);
        let pg2 = ProbGraph::fixed(gen::gnm(40, 120, &mut rng), 0.3).expect("graph2");
        engine.add_graph("g", pg2);
        soi_util::failpoint::install("server.sketch.build=error").expect("arm");
        // Without degrade: typed fault.
        let err = engine.execute(&sketch_spread_req(None)).expect_err("fault");
        assert!(matches!(err, SoiError::Fault { .. }), "{err}");
        // With degrade: the stale sketch answers spread, flagged.
        let out = engine
            .execute(&Request::SpreadEstimate {
                graph: "g".into(),
                seeds: vec![0, 1],
                samples: 64,
                seed: 9,
                deadline_ticks: None,
                degrade: true,
                backend: BackendKind::Sketch,
                sketch_k: None,
            })
            .expect("stale");
        assert!(
            out.payload
                .contains("\"degraded\":true,\"degraded_mode\":\"stale-sketch\""),
            "{}",
            out.payload
        );
        // Seed selection cannot run on a mismatched stale sketch: typed
        // internal error, never a wrong answer or a panic.
        let err = engine
            .execute(&Request::InfmaxTc {
                graph: "g".into(),
                k: 2,
                deadline_ticks: None,
                degrade: true,
                backend: BackendKind::Sketch,
                sketch_k: None,
            })
            .expect_err("cannot degrade selection");
        assert!(
            matches!(
                err,
                SoiError::Protocol {
                    kind: ProtoErrorKind::Internal,
                    ..
                }
            ),
            "{err}"
        );
        soi_util::failpoint::clear();
    }
}
