//! The server-side query engine: loaded graphs, warm index cache, and
//! request execution under a per-request deadline.
//!
//! Graphs are loaded once at startup and shared immutably. Cascade
//! indexes are built on first use (or eagerly via
//! [`ServerEngine::warm`]) and kept in an LRU cache keyed by
//! [`CascadeIndex::cache_key`], so repeated queries against the same
//! graph reuse the ℓ sampled worlds instead of resampling — the whole
//! point of a long-lived daemon over one-shot CLI runs.
//!
//! Deadlines are deterministic tick budgets ([`Deadline`]): a query that
//! runs out of budget returns a well-formed `partial` response covering
//! the exact prefix of work completed, never a stalled worker.

use crate::json::fmt_num;
use crate::protocol::Request;
use soi_core::EngineRunOpts;
use soi_graph::ProbGraph;
use soi_index::{CascadeIndex, IndexConfig};
use soi_jaccard::median::MedianConfig;
use soi_util::runtime::{Deadline, Outcome, StopReason};
use soi_util::{ProtoErrorKind, SoiError};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, PoisonError};

/// Engine-level options fixed at startup.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Worlds ℓ per cascade index.
    pub num_worlds: usize,
    /// Master sampling seed for index builds.
    pub seed: u64,
    /// Apply transitive reduction to indexed worlds.
    pub transitive_reduction: bool,
    /// Threads per index build / batch solve (0 = pool default).
    pub threads: usize,
    /// Jaccard-median tuning shared by all queries.
    pub median: MedianConfig,
    /// LRU capacity of the index cache.
    pub cache_cap: usize,
    /// Default per-request tick budget (0 = unlimited) applied when a
    /// request carries no `deadline_ticks`.
    pub default_deadline_ticks: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            num_worlds: 256,
            seed: 42,
            transitive_reduction: true,
            threads: 0,
            median: MedianConfig::default(),
            cache_cap: 4,
            default_deadline_ticks: 0,
        }
    }
}

/// The outcome of executing one compute request: a pre-encoded JSON
/// payload fragment plus partial-progress accounting when a deadline
/// cut the work short.
#[derive(Clone, Debug, PartialEq)]
pub struct ExecOutput {
    /// JSON fragment (`"key":value,...`) for the response body.
    pub payload: String,
    /// `Some((done, total, reason))` when the result covers a prefix.
    pub partial: Option<(u64, u64, StopReason)>,
}

impl ExecOutput {
    fn complete(payload: String) -> Self {
        ExecOutput {
            payload,
            partial: None,
        }
    }

    fn from_outcome<T>(outcome: &Outcome<T>, payload: String) -> Self {
        match outcome {
            Outcome::Completed(_) => ExecOutput::complete(payload),
            Outcome::Partial {
                progress, reason, ..
            } => ExecOutput {
                payload,
                partial: Some((progress.done, progress.total, *reason)),
            },
        }
    }
}

/// Loaded graphs plus the warm index cache.
pub struct ServerEngine {
    graphs: BTreeMap<String, Arc<ProbGraph>>,
    cache: Mutex<crate::cache::LruCache<CascadeIndex>>,
    config: EngineConfig,
}

impl ServerEngine {
    /// An engine with no graphs loaded yet.
    pub fn new(config: EngineConfig) -> Self {
        ServerEngine {
            graphs: BTreeMap::new(),
            cache: Mutex::new(crate::cache::LruCache::new(config.cache_cap)),
            config,
        }
    }

    /// Registers a graph under `name` (replacing any previous binding —
    /// the cache key includes the graph fingerprint, so stale indexes
    /// can never serve the new graph).
    pub fn add_graph(&mut self, name: impl Into<String>, pg: ProbGraph) {
        self.graphs.insert(name.into(), Arc::new(pg));
    }

    /// Names of the loaded graphs, sorted.
    pub fn graph_names(&self) -> Vec<&str> {
        self.graphs.keys().map(String::as_str).collect()
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Eagerly builds the index of every loaded graph so the first
    /// query doesn't pay the build. Returns the number of indexes built.
    pub fn warm(&self) -> usize {
        let names: Vec<String> = self.graphs.keys().cloned().collect();
        let mut built = 0;
        for name in names {
            if self.index_for(&name).is_ok() {
                built += 1;
            }
        }
        built
    }

    fn index_config(&self) -> IndexConfig {
        IndexConfig {
            num_worlds: self.config.num_worlds,
            seed: self.config.seed,
            transitive_reduction: self.config.transitive_reduction,
            threads: self.config.threads,
        }
    }

    fn graph(&self, name: &str) -> Result<&Arc<ProbGraph>, SoiError> {
        self.graphs.get(name).ok_or_else(|| {
            SoiError::protocol(
                ProtoErrorKind::UnknownGraph,
                format!("graph {name:?} is not loaded"),
            )
        })
    }

    /// The warm index for `name`, building (and caching) it on a miss.
    pub fn index_for(&self, name: &str) -> Result<Arc<CascadeIndex>, SoiError> {
        let pg = self.graph(name)?;
        let config = self.index_config();
        let key = CascadeIndex::cache_key(pg, &config);
        {
            let mut cache = self.cache.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(index) = cache.get(key) {
                soi_obs::counter_add!("server.cache_hits", 1);
                return Ok(index);
            }
        }
        soi_obs::counter_add!("server.cache_misses", 1);
        // Built outside the cache lock: a slow build must not stall
        // queries against already-cached graphs.
        let _span = soi_obs::span("server.index_build");
        let index = Arc::new(CascadeIndex::build(pg, config));
        let mut cache = self.cache.lock().unwrap_or_else(PoisonError::into_inner);
        cache.insert(key, Arc::clone(&index));
        Ok(index)
    }

    fn deadline(&self, requested: Option<u64>) -> Deadline {
        match requested.unwrap_or(self.config.default_deadline_ticks) {
            0 => Deadline::unlimited(),
            ticks => Deadline::ticks(ticks),
        }
    }

    /// Executes one compute request, producing the response payload.
    /// Control requests ([`Request::is_control`]) are not handled here.
    pub fn execute(&self, req: &Request) -> Result<ExecOutput, SoiError> {
        match req {
            Request::TypicalCascade {
                graph,
                source,
                deadline_ticks,
            } => {
                let index = self.index_for(graph)?;
                if (*source as usize) >= index.num_nodes() {
                    return Err(SoiError::protocol(
                        ProtoErrorKind::BadField,
                        format!(
                            "source {source} out of range (graph has {} nodes)",
                            index.num_nodes()
                        ),
                    ));
                }
                let deadline = self.deadline(*deadline_ticks);
                let samples = index.cascades_of(*source);
                let outcome = soi_jaccard::median::jaccard_median_budgeted(
                    &samples,
                    &self.config.median,
                    &deadline,
                );
                let fit = outcome.value_ref();
                let payload = format!(
                    "\"sphere\":{},\"cost\":{}",
                    encode_nodes(&fit.median),
                    fmt_num(fit.cost)
                );
                Ok(ExecOutput::from_outcome(&outcome, payload))
            }
            Request::SpreadEstimate {
                graph,
                seeds,
                samples,
                seed,
                deadline_ticks,
            } => {
                let pg = self.graph(graph)?;
                if let Some(&bad) = seeds.iter().find(|&&s| (s as usize) >= pg.num_nodes()) {
                    return Err(SoiError::protocol(
                        ProtoErrorKind::BadField,
                        format!(
                            "seed {bad} out of range (graph has {} nodes)",
                            pg.num_nodes()
                        ),
                    ));
                }
                let deadline = self.deadline(*deadline_ticks);
                let outcome =
                    soi_sampling::estimate_spread_budgeted(pg, seeds, *samples, *seed, &deadline);
                let payload = format!("\"spread\":{}", fmt_num(*outcome.value_ref()));
                Ok(ExecOutput::from_outcome(&outcome, payload))
            }
            Request::InfmaxTc {
                graph,
                k,
                deadline_ticks,
            } => {
                let index = self.index_for(graph)?;
                let deadline = self.deadline(*deadline_ticks);
                let opts = EngineRunOpts {
                    deadline: &deadline,
                    checkpoint: None,
                    checkpoint_every: 64,
                    resume: false,
                };
                let outcome = soi_core::all_typical_cascades_resumable(
                    &index,
                    &self.config.median,
                    self.config.threads,
                    &opts,
                )?;
                let spheres: Vec<Vec<u32>> = outcome
                    .value_ref()
                    .iter()
                    .map(|tc| tc.median.clone())
                    .collect();
                let run = soi_influence::infmax_tc(&spheres, *k, 0);
                let coverage: Vec<String> =
                    run.coverage_curve.iter().map(|&c| fmt_num(c)).collect();
                let payload = format!(
                    "\"seeds\":{},\"coverage\":[{}]",
                    encode_nodes(&run.seeds),
                    coverage.join(",")
                );
                Ok(ExecOutput::from_outcome(&outcome, payload))
            }
            control => Err(SoiError::invalid(format!(
                "control request {:?} routed to the compute engine",
                control.type_name()
            ))),
        }
    }
}

fn encode_nodes(nodes: &[u32]) -> String {
    let items: Vec<String> = nodes.iter().map(|n| n.to_string()).collect();
    format!("[{}]", items.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_graph::gen;

    fn engine() -> ServerEngine {
        let mut rng = soi_util::rng::Xoshiro256pp::seed_from_u64(7);
        let pg = ProbGraph::fixed(gen::gnm(40, 160, &mut rng), 0.4).expect("graph");
        let mut engine = ServerEngine::new(EngineConfig {
            num_worlds: 16,
            seed: 3,
            cache_cap: 2,
            ..EngineConfig::default()
        });
        engine.add_graph("g", pg);
        engine
    }

    #[test]
    fn typical_cascade_is_deterministic() {
        let engine = engine();
        let req = Request::TypicalCascade {
            graph: "g".into(),
            source: 5,
            deadline_ticks: None,
        };
        let a = engine.execute(&req).expect("exec");
        let b = engine.execute(&req).expect("exec");
        assert_eq!(a, b);
        assert!(a.partial.is_none());
        assert!(a.payload.starts_with("\"sphere\":["), "{}", a.payload);
    }

    #[test]
    fn spread_deadline_yields_partial_prefix() {
        let engine = engine();
        let full = Request::SpreadEstimate {
            graph: "g".into(),
            seeds: vec![0, 1],
            samples: 64,
            seed: 9,
            deadline_ticks: None,
        };
        let capped = Request::SpreadEstimate {
            graph: "g".into(),
            seeds: vec![0, 1],
            samples: 64,
            seed: 9,
            deadline_ticks: Some(8),
        };
        let full = engine.execute(&full).expect("full");
        assert!(full.partial.is_none());
        let capped = engine.execute(&capped).expect("capped");
        let (done, total, reason) = capped.partial.expect("partial");
        assert_eq!(total, 64);
        assert!(done < total);
        assert_eq!(reason, StopReason::DeadlineExpired);
        // Partial value is the mean over the deterministic prefix.
        let again = engine.execute(&Request::SpreadEstimate {
            graph: "g".into(),
            seeds: vec![0, 1],
            samples: 64,
            seed: 9,
            deadline_ticks: Some(8),
        });
        assert_eq!(capped, again.expect("again"));
    }

    #[test]
    fn infmax_selects_k_seeds() {
        let engine = engine();
        let out = engine
            .execute(&Request::InfmaxTc {
                graph: "g".into(),
                k: 3,
                deadline_ticks: None,
            })
            .expect("exec");
        assert!(out.partial.is_none());
        assert!(out.payload.contains("\"seeds\":["));
        assert!(out.payload.contains("\"coverage\":["));
    }

    #[test]
    fn unknown_graph_and_bad_fields_are_typed() {
        let engine = engine();
        let err = engine
            .execute(&Request::TypicalCascade {
                graph: "missing".into(),
                source: 0,
                deadline_ticks: None,
            })
            .expect_err("unknown graph");
        assert!(matches!(
            err,
            SoiError::Protocol {
                kind: ProtoErrorKind::UnknownGraph,
                ..
            }
        ));
        let err = engine
            .execute(&Request::TypicalCascade {
                graph: "g".into(),
                source: 40,
                deadline_ticks: None,
            })
            .expect_err("out of range");
        assert!(matches!(
            err,
            SoiError::Protocol {
                kind: ProtoErrorKind::BadField,
                ..
            }
        ));
    }

    #[test]
    fn index_cache_hits_after_first_build() {
        let engine = engine();
        let _ = engine.index_for("g").expect("build");
        let before = soi_obs::metrics::counter("server.cache_hits").get();
        let _ = engine.index_for("g").expect("cached");
        assert!(soi_obs::metrics::counter("server.cache_hits").get() > before);
    }
}
