//! A small LRU cache for warm cascade indexes.
//!
//! The daemon keys entries on [`soi_index::CascadeIndex::cache_key`]
//! (graph fingerprint × index config), so two graphs that happen to
//! share a name across reloads can never alias each other's indexes.
//! Entries are `Arc`-shared: eviction never invalidates an index a
//! worker is still querying.

use std::sync::Arc;

/// An LRU cache from 64-bit keys to shared values. Not thread-safe on
/// its own — the engine wraps it in a mutex.
pub struct LruCache<V> {
    cap: usize,
    /// Recency order: least-recently-used first, most-recent last.
    entries: Vec<(u64, Arc<V>)>,
}

impl<V> LruCache<V> {
    /// An empty cache holding at most `cap` entries (min 1).
    pub fn new(cap: usize) -> Self {
        LruCache {
            cap: cap.max(1),
            entries: Vec::new(),
        }
    }

    /// Looks up `key`, marking it most-recently-used on a hit.
    pub fn get(&mut self, key: u64) -> Option<Arc<V>> {
        let pos = self.entries.iter().position(|(k, _)| *k == key)?;
        let entry = self.entries.remove(pos);
        let value = Arc::clone(&entry.1);
        self.entries.push(entry);
        Some(value)
    }

    /// Inserts `key`, evicting the least-recently-used entry when full.
    /// Re-inserting an existing key replaces its value and refreshes it.
    pub fn insert(&mut self, key: u64, value: Arc<V>) {
        if let Some(pos) = self.entries.iter().position(|(k, _)| *k == key) {
            self.entries.remove(pos);
        } else if self.entries.len() >= self.cap {
            self.entries.remove(0);
        }
        self.entries.push((key, value));
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut cache: LruCache<u32> = LruCache::new(2);
        cache.insert(1, Arc::new(10));
        cache.insert(2, Arc::new(20));
        assert_eq!(cache.get(1).map(|v| *v), Some(10)); // 1 now most recent
        cache.insert(3, Arc::new(30)); // evicts 2
        assert_eq!(cache.get(2), None);
        assert_eq!(cache.get(1).map(|v| *v), Some(10));
        assert_eq!(cache.get(3).map(|v| *v), Some(30));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn reinsert_replaces_without_eviction() {
        let mut cache: LruCache<u32> = LruCache::new(2);
        cache.insert(1, Arc::new(10));
        cache.insert(2, Arc::new(20));
        cache.insert(1, Arc::new(11));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(1).map(|v| *v), Some(11));
        assert_eq!(cache.get(2).map(|v| *v), Some(20));
    }

    #[test]
    fn shared_values_survive_eviction() {
        let mut cache: LruCache<u32> = LruCache::new(1);
        cache.insert(1, Arc::new(10));
        let held = cache.get(1).expect("hit");
        cache.insert(2, Arc::new(20));
        assert!(cache.get(1).is_none());
        assert_eq!(*held, 10, "evicted value stays alive while referenced");
        assert!(!cache.is_empty());
    }
}
