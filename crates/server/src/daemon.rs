//! The long-lived daemon: TCP accept loop, per-connection protocol
//! handling, and the stdio front-end for hermetic tests.
//!
//! One thread per connection reads newline-delimited requests. Control
//! requests (`health`/`stats`/`shutdown`) are answered inline by the
//! connection thread, so the server stays observable and stoppable
//! while every worker is busy; compute requests go through the bounded
//! queue to the worker pool and the connection thread blocks on the
//! reply channel (one request in flight per connection).
//!
//! Shutdown sequence: a `shutdown` request is acknowledged, the accept
//! loop is unblocked with a loop-back connection and exits, the worker
//! pool drains every queued and in-flight job (their responses still
//! reach their clients), read sides of open connections are shut down
//! so their threads observe EOF, and all threads are joined. The CLI
//! then flushes the final metrics report.

use crate::engine::ServerEngine;
use crate::protocol::{self, Envelope, Request, DEFAULT_MAX_LINE};
use crate::trace::{PhaseTrace, SlowLog};
use crate::worker::{self, Job, PoolHandle, WorkerPool};
use soi_util::{ProtoErrorKind, SoiError};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::time::Instant;

/// Version tag of the extended `stats` payload: the flat fields are
/// frozen v1 shape, the structured `counters`/`gauges`/`histograms`/
/// `timing_hists`/`threads`/`pool` sections arrived in v2.
pub const STATS_VERSION: u64 = 2;

/// Daemon options fixed at startup.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// TCP port to bind on 127.0.0.1 (0 = ephemeral; the bound address
    /// is announced on stdout as `listening on HOST:PORT`).
    pub port: u16,
    /// Worker threads (0 = pool default).
    pub workers: usize,
    /// Bounded queue capacity; a full queue rejects with `queue-full`.
    pub queue_cap: usize,
    /// Request-line length cap in bytes.
    pub max_line: usize,
    /// Slow-query threshold in deterministic ticks (0 = disabled).
    pub slow_query_ticks: u64,
    /// Where the slow-query JSONL log appends; both this and a nonzero
    /// threshold are required to activate the log.
    pub slow_query_log: Option<std::path::PathBuf>,
    /// Size cap for the slow-query log in bytes (0 = unbounded). When a
    /// line would push the live file past the cap it rotates to
    /// `<path>.old`, keeping one old generation.
    pub slow_query_log_max_bytes: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            port: 0,
            workers: 0,
            queue_cap: 64,
            max_line: DEFAULT_MAX_LINE,
            slow_query_ticks: 0,
            slow_query_log: None,
            slow_query_log_max_bytes: 0,
        }
    }
}

/// One read from the capped line reader.
pub(crate) enum LineRead {
    /// A complete line (newline stripped).
    Line(String),
    /// The line exceeded the cap; its remainder was discarded.
    Oversized,
    /// The line was not valid UTF-8; it was discarded whole rather
    /// than lossily decoded (replacement characters would let a
    /// corrupted request masquerade as a different well-formed one).
    NotUtf8,
    /// End of stream; `mid_line` when data arrived without a final
    /// newline (a client that died mid-request).
    Eof {
        /// Whether the stream ended inside an unterminated line.
        mid_line: bool,
    },
}

/// Reads one newline-terminated line of at most `max_line` bytes.
pub(crate) fn read_line_capped<R: BufRead>(r: &mut R, max_line: usize) -> io::Result<LineRead> {
    let mut buf: Vec<u8> = Vec::new();
    let mut oversized = false;
    loop {
        let chunk = r.fill_buf()?;
        if chunk.is_empty() {
            return Ok(if buf.is_empty() && !oversized {
                LineRead::Eof { mid_line: false }
            } else {
                LineRead::Eof { mid_line: true }
            });
        }
        let newline = chunk.iter().position(|&b| b == b'\n');
        let take = newline.map_or(chunk.len(), |at| at + 1);
        if !oversized {
            buf.extend_from_slice(&chunk[..take]);
            if buf.len() > max_line + 1 {
                oversized = true;
                buf.clear();
            }
        }
        r.consume(take);
        if newline.is_some() {
            if oversized {
                return Ok(LineRead::Oversized);
            }
            while buf.last() == Some(&b'\n') || buf.last() == Some(&b'\r') {
                buf.pop();
            }
            return Ok(match String::from_utf8(buf) {
                Ok(line) => LineRead::Line(line),
                Err(_) => LineRead::NotUtf8,
            });
        }
    }
}

/// Builds the inline response for a control request.
fn control_response(
    engine: &ServerEngine,
    id: u64,
    req: &Request,
    pool: Option<&PoolHandle>,
) -> String {
    match req {
        Request::Health => protocol::encode_ok(
            id,
            &format!("\"ok\":true,\"graphs\":{}", engine.graph_names().len()),
            0,
        ),
        Request::Stats => protocol::encode_ok(id, &stats_payload(engine, pool), 0),
        Request::Shutdown => protocol::encode_ok(id, "\"draining\":true", 0),
        Request::Rebalance { .. } => protocol::encode_error(
            Some(id),
            &SoiError::protocol(
                ProtoErrorKind::BadField,
                "rebalance is a router control; this daemon holds no shard map",
            ),
        ),
        _ => protocol::encode_error(
            Some(id),
            &SoiError::protocol(ProtoErrorKind::BadField, "not a control request"),
        ),
    }
}

/// Builds the full `stats` payload fragment: the original flat fields
/// (frozen for v1 clients) followed by the v2 structured sections — a
/// complete snapshot of every registered counter, gauge, histogram, and
/// wall-timing histogram, plus the per-thread timing plane. Wall-clock
/// values appear only in scalar fields whose names start with `wall_`,
/// so [`soi_obs::report::mask_wall_clock`] keeps masking mechanically;
/// section keys deliberately avoid the prefix (`timing_hists`).
fn stats_payload(engine: &ServerEngine, pool: Option<&PoolHandle>) -> String {
    let (depth, in_flight) = pool.map_or((0, 0), |p| (p.queue_depth(), p.in_flight()));
    let generations = pool.map_or(0, PoolHandle::generations);
    let flat = format!(
        "\"graphs\":{},\"queue_depth\":{depth},\"in_flight\":{in_flight},\
         \"requests_total\":{},\"rejected_queue_full\":{},\"cache_hits\":{},\"cache_misses\":{},\
         \"worker_generations\":{generations},\"worker_panics\":{},\"worker_respawns\":{},\
         \"requests_shed\":{},\"requests_degraded\":{}",
        engine.graph_names().len(),
        soi_obs::counter("server.requests_total").get(),
        soi_obs::counter("server.rejected_queue_full").get(),
        soi_obs::counter("server.cache_hits").get(),
        soi_obs::counter("server.cache_misses").get(),
        soi_obs::counter("server.worker_panics").get(),
        soi_obs::counter("server.worker_respawns").get(),
        soi_obs::counter("server.requests_shed").get(),
        soi_obs::counter("server.requests_degraded").get(),
    );
    format!("{flat},{}", v2_sections())
}

/// The v2 structured sections of a `stats` payload — a snapshot of this
/// process's metric registry and per-thread timing plane, shared by the
/// single daemon and the shard router (which appends its own
/// shard-health sections on top).
pub(crate) fn v2_sections() -> String {
    let registry = soi_obs::metrics::registry();
    let join = |items: Vec<String>| items.join(",");
    let counters = join(
        registry
            .counter_values()
            .iter()
            .map(|(name, v)| format!("\"{name}\":{v}"))
            .collect(),
    );
    let gauges = join(
        registry
            .gauge_values()
            .iter()
            .map(|(name, v)| format!("\"{name}\":{}", crate::json::fmt_num(*v)))
            .collect(),
    );
    let num_list = |vals: &[f64]| join(vals.iter().map(|v| crate::json::fmt_num(*v)).collect());
    let histograms = join(
        registry
            .histogram_values()
            .iter()
            .map(|(name, (bounds, counts))| {
                let counts = join(counts.iter().map(u64::to_string).collect());
                format!(
                    "\"{name}\":{{\"bounds\":[{}],\"counts\":[{counts}]}}",
                    num_list(bounds)
                )
            })
            .collect(),
    );
    let timing_hists = join(
        registry
            .wall_hist_values()
            .iter()
            .map(|(name, stat)| {
                format!(
                    "\"{name}\":{{\"count\":{},\"wall_p50_ns\":{},\"wall_p90_ns\":{},\
                     \"wall_max_ns\":{}}}",
                    stat.count, stat.p50_ns, stat.p90_ns, stat.max_ns
                )
            })
            .collect(),
    );
    let (threads, pool_snap) = soi_obs::perthread::snapshot();
    let threads = join(
        threads
            .iter()
            .map(|t| {
                let name = if t.slot >= soi_obs::perthread::MAX_SLOTS {
                    "thread.coordinator".to_string()
                } else {
                    format!("thread.{}", t.slot)
                };
                format!(
                    "{{\"name\":\"{name}\",\"wall_busy_ns\":{},\"wall_idle_ns\":{},\
                     \"wall_merge_ns\":{},\"wall_lock_wait_ns\":{},\"wall_lifetime_ns\":{},\
                     \"wall_items\":{}}}",
                    t.busy_ns, t.idle_ns, t.merge_ns, t.lock_wait_ns, t.lifetime_ns, t.items
                )
            })
            .collect(),
    );
    format!(
        "\"stats_version\":{STATS_VERSION},\"counters\":{{{counters}}},\
         \"gauges\":{{{gauges}}},\"histograms\":{{{histograms}}},\
         \"timing_hists\":{{{timing_hists}}},\"threads\":[{threads}],\
         \"pool\":{{\"dispatches\":{},\"items\":{},\"workers_max\":{},\
         \"wall_capacity_ns\":{},\"wall_lifetime_ns\":{},\"wall_imbalance_ns\":{}}}",
        pool_snap.dispatches,
        pool_snap.items,
        pool_snap.workers_max,
        pool_snap.capacity_ns,
        pool_snap.lifetime_ns,
        pool_snap.imbalance_ns,
    )
}

/// What the connection loop should do after handling one line.
enum Step {
    Continue,
    Shutdown,
    Disconnect,
}

/// Handles one raw request line end-to-end: parse, dispatch, respond.
/// `submit` runs a compute envelope to its encoded response line,
/// carrying the phase timeline started here (the `parse` phase: one
/// tick per request-line byte).
fn handle_line<W: Write>(
    engine: &ServerEngine,
    pool: Option<&PoolHandle>,
    line: &str,
    submit: &dyn Fn(Envelope, PhaseTrace) -> String,
    writer: &mut W,
) -> Step {
    if line.trim().is_empty() {
        return Step::Continue;
    }
    soi_obs::counter_add!("server.requests_total", 1);
    let started = Instant::now();
    let (response, shutdown) = match protocol::parse_request(line) {
        Err(err) => (protocol::encode_error(None, &err), false),
        Ok(envelope) if envelope.req.is_control() => {
            let is_shutdown = envelope.req == Request::Shutdown;
            let mut resp = control_response(engine, envelope.id, &envelope.req, pool);
            // Control responses are cheap; stamp the measured wall time
            // over the placeholder so every response carries one.
            let wall_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            if let Some(stripped) = resp.strip_suffix("\"wall_ns\":0}") {
                resp = format!("{stripped}\"wall_ns\":{wall_ns}}}");
            }
            (resp, is_shutdown)
        }
        Ok(envelope) => {
            let mut trace = PhaseTrace::new();
            trace.record(
                "parse",
                line.len() as u64,
                crate::trace::elapsed_ns(started),
            );
            (submit(envelope, trace), false)
        }
    };
    soi_util::failpoint_crash!("server.response.write");
    if writeln!(writer, "{response}")
        .and_then(|()| writer.flush())
        .is_err()
    {
        soi_obs::counter_add!("server.client_disconnects", 1);
        return Step::Disconnect;
    }
    if shutdown {
        Step::Shutdown
    } else {
        Step::Continue
    }
}

/// Shuts the socket down when the connection thread exits — including
/// by unwinding (an armed `server.response.write` panic failpoint). The
/// accept loop keeps its own clone of every stream for drain, so merely
/// dropping this thread's handles would leave the underlying socket
/// open and the client blocked forever on a response that will never
/// come; `shutdown(Both)` reaches the socket itself, past every clone.
struct ConnGuard(TcpStream);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        let _ = self.0.shutdown(Shutdown::Both);
    }
}

fn handle_conn(
    stream: TcpStream,
    engine: Arc<ServerEngine>,
    pool: PoolHandle,
    shutdown: Arc<AtomicBool>,
    addr: SocketAddr,
    max_line: usize,
) {
    let Ok(mut writer) = stream.try_clone() else {
        return;
    };
    let Ok(guard_stream) = stream.try_clone() else {
        return;
    };
    let _guard = ConnGuard(guard_stream);
    let mut reader = BufReader::new(stream);
    let submit = |envelope: Envelope, trace: PhaseTrace| -> String {
        let id = envelope.id;
        let (tx, rx) = mpsc::channel();
        pool.submit(Job::with_trace(envelope, tx, trace));
        rx.recv().unwrap_or_else(|_| {
            protocol::encode_error(
                Some(id),
                &SoiError::protocol(ProtoErrorKind::QueueFull, "worker pool unavailable"),
            )
        })
    };
    loop {
        let read = match read_line_capped(&mut reader, max_line) {
            Ok(read) => read,
            Err(_) => {
                soi_obs::counter_add!("server.client_disconnects", 1);
                return;
            }
        };
        let line = match read {
            LineRead::Eof { mid_line } => {
                if mid_line {
                    soi_obs::counter_add!("server.client_disconnects", 1);
                    soi_obs::event!(soi_obs::Level::Debug, "client disconnected mid-request");
                }
                return;
            }
            LineRead::Oversized | LineRead::NotUtf8 => {
                let err = match read {
                    LineRead::Oversized => SoiError::protocol(
                        ProtoErrorKind::OversizedLine,
                        format!("request line exceeds {max_line} bytes"),
                    ),
                    _ => SoiError::protocol(
                        ProtoErrorKind::MalformedJson,
                        "request line is not valid UTF-8",
                    ),
                };
                let resp = protocol::encode_error(None, &err);
                if writeln!(writer, "{resp}")
                    .and_then(|()| writer.flush())
                    .is_err()
                {
                    soi_obs::counter_add!("server.client_disconnects", 1);
                    return;
                }
                continue;
            }
            LineRead::Line(line) => line,
        };
        match handle_line(&engine, Some(&pool), &line, &submit, &mut writer) {
            Step::Continue => {}
            Step::Disconnect => return,
            Step::Shutdown => {
                // ordering: SeqCst on a once-per-process control flag —
                // the flag is the whole payload and the path is cold,
                // so clarity wins over saved cycles.
                shutdown.store(true, Ordering::SeqCst);
                // Unblock the accept loop so it observes the flag.
                let _ = TcpStream::connect(addr);
                // Keep reading: the client closes when satisfied.
            }
        }
    }
}

/// Runs the daemon until a `shutdown` request arrives. Announces the
/// bound address on `out` as `listening on HOST:PORT`, then serves.
pub fn run_tcp<W: Write>(
    engine: Arc<ServerEngine>,
    config: &ServeConfig,
    out: &mut W,
) -> Result<(), SoiError> {
    let listener = TcpListener::bind(("127.0.0.1", config.port))
        .map_err(|e| SoiError::io("bind 127.0.0.1", e))?;
    let addr = listener
        .local_addr()
        .map_err(|e| SoiError::io("local_addr", e))?;
    // Touch the self-healing counters so they appear in the metrics
    // report even when nothing failed (0 is an answer, not an absence).
    soi_obs::counter_add!("server.worker_panics", 0);
    soi_obs::counter_add!("server.worker_respawns", 0);
    soi_obs::counter_add!("server.requests_shed", 0);
    soi_obs::counter_add!("server.requests_degraded", 0);
    let built = engine.warm();
    soi_obs::event!(soi_obs::Level::Info, "serving {built} graph(s) on {addr}");
    writeln!(out, "listening on {addr}").map_err(|e| SoiError::io("stdout", e))?;
    out.flush().map_err(|e| SoiError::io("stdout", e))?;

    let workers = soi_util::pool::effective_threads(config.workers, usize::MAX);
    let slow = match (&config.slow_query_log, config.slow_query_ticks) {
        (Some(path), ticks) if ticks > 0 => Some(Arc::new(
            SlowLog::to_file(ticks, path, config.slow_query_log_max_bytes)
                .map_err(|e| SoiError::io("slow-query log", e))?,
        )),
        _ => None,
    };
    let pool = WorkerPool::start_with(Arc::clone(&engine), workers, config.queue_cap, slow);
    let shutdown = Arc::new(AtomicBool::new(false));
    let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
    let mut conn_threads = Vec::new();

    for stream in listener.incoming() {
        // ordering: SeqCst pairs with the store in the shutdown step;
        // one load per accepted connection is not a hot path.
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else {
            continue;
        };
        if let Ok(clone) = stream.try_clone() {
            conns
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(clone);
        }
        let engine = Arc::clone(&engine);
        let handle = pool.handle();
        let shutdown = Arc::clone(&shutdown);
        let max_line = config.max_line;
        conn_threads.push(std::thread::spawn(move || {
            handle_conn(stream, engine, handle, shutdown, addr, max_line);
        }));
    }
    drop(listener);

    // Graceful drain: finish queued + in-flight jobs (responses still
    // flow to their connections), then unblock idle readers and join.
    pool.shutdown();
    for stream in conns.lock().unwrap_or_else(PoisonError::into_inner).iter() {
        let _ = stream.shutdown(Shutdown::Read);
    }
    for thread in conn_threads {
        let _ = thread.join();
    }
    soi_obs::event!(soi_obs::Level::Info, "drained; shutting down");
    Ok(())
}

/// Serves the protocol over an arbitrary reader/writer pair, executing
/// compute requests synchronously (no worker pool). This is the
/// hermetic front-end used by `soi serve --stdio` and the protocol
/// tests; semantics match the TCP daemon except for admission control
/// (a single sequential lane cannot overflow).
pub fn run_stdio<R: BufRead, W: Write>(
    engine: &ServerEngine,
    max_line: usize,
    input: &mut R,
    out: &mut W,
) -> Result<(), SoiError> {
    engine.warm();
    loop {
        let read = read_line_capped(input, max_line).map_err(|e| SoiError::io("stdin", e))?;
        let line = match read {
            LineRead::Eof { mid_line } => {
                if mid_line {
                    soi_obs::counter_add!("server.client_disconnects", 1);
                }
                return Ok(());
            }
            LineRead::Oversized | LineRead::NotUtf8 => {
                let err = match read {
                    LineRead::Oversized => SoiError::protocol(
                        ProtoErrorKind::OversizedLine,
                        format!("request line exceeds {max_line} bytes"),
                    ),
                    _ => SoiError::protocol(
                        ProtoErrorKind::MalformedJson,
                        "request line is not valid UTF-8",
                    ),
                };
                writeln!(out, "{}", protocol::encode_error(None, &err))
                    .map_err(|e| SoiError::io("stdout", e))?;
                continue;
            }
            LineRead::Line(line) => line,
        };
        let submit = |envelope: Envelope, mut trace: PhaseTrace| {
            // No queue on the synchronous lane; the phase is recorded at
            // zero so stdio timelines share the TCP schema.
            trace.record("queue_wait", 0, 0);
            worker::execute_job_traced(engine, &envelope, &mut trace, None)
        };
        match handle_line(engine, None, &line, &submit, out) {
            Step::Continue => {}
            Step::Disconnect => return Ok(()),
            Step::Shutdown => return Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use soi_graph::{gen, ProbGraph};

    fn engine() -> ServerEngine {
        let pg = ProbGraph::fixed(gen::path(6), 1.0).expect("graph");
        let mut engine = ServerEngine::new(EngineConfig {
            num_worlds: 4,
            ..EngineConfig::default()
        });
        engine.add_graph("g", pg);
        engine
    }

    fn serve_lines(input: &str, max_line: usize) -> Vec<String> {
        // Serialized with the tests that arm server.* failpoints: the
        // registry is process-global and warm() hits the build site.
        let _g = soi_util::failpoint::test_guard();
        let engine = engine();
        let mut reader = BufReader::new(input.as_bytes());
        let mut out = Vec::new();
        run_stdio(&engine, max_line, &mut reader, &mut out).expect("run_stdio");
        String::from_utf8_lossy(&out)
            .lines()
            .map(str::to_string)
            .collect()
    }

    #[test]
    fn stdio_serves_health_and_compute() {
        let lines = serve_lines(
            "{\"v\":1,\"id\":1,\"type\":\"health\"}\n\
             {\"v\":1,\"id\":2,\"type\":\"typical-cascade\",\"graph\":\"g\",\"source\":0}\n",
            DEFAULT_MAX_LINE,
        );
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"ok\":true"), "{}", lines[0]);
        assert!(
            lines[1].contains("\"sphere\":[0,1,2,3,4,5]"),
            "{}",
            lines[1]
        );
    }

    #[test]
    fn stats_payload_has_versioned_sections_and_masks_clean() {
        let lines = serve_lines(
            "{\"v\":1,\"id\":2,\"type\":\"typical-cascade\",\"graph\":\"g\",\"source\":0}\n\
             {\"v\":1,\"id\":1,\"type\":\"stats\"}\n",
            DEFAULT_MAX_LINE,
        );
        let stats = &lines[1];
        for section in [
            "\"stats_version\":2",
            "\"counters\":{",
            "\"gauges\":{",
            "\"histograms\":{",
            "\"timing_hists\":{",
            "\"threads\":[",
            "\"pool\":{\"dispatches\":",
            "\"server.requests_total\":",
            "\"server.request_ns\":{\"count\":",
        ] {
            assert!(stats.contains(section), "missing {section} in {stats}");
        }
        // The snapshot parses as JSON both raw and wall-masked — the
        // wall_ prefix only ever names scalar fields.
        crate::json::parse(stats).expect("raw stats parse");
        let masked = soi_obs::report::mask_wall_clock(stats);
        crate::json::parse(&masked).expect("masked stats parse");
        assert!(masked.contains("\"wall_p50_ns\":0"), "{masked}");
    }

    #[test]
    fn stdio_traced_compute_returns_timeline() {
        let lines = serve_lines(
            "{\"v\":1,\"id\":7,\"type\":\"typical-cascade\",\"graph\":\"g\",\"source\":0,\"trace\":true}\n",
            DEFAULT_MAX_LINE,
        );
        assert_eq!(lines.len(), 1);
        let line = &lines[0];
        assert!(line.contains("\"status\":\"ok\""), "{line}");
        for phase in ["parse", "queue_wait", "cache", "compute", "serialize"] {
            assert!(
                line.contains(&format!("{{\"phase\":\"{phase}\",\"ticks\":")),
                "missing {phase} in {line}"
            );
        }
        // The parse phase bills one tick per request-line byte.
        assert!(
            line.contains("{\"phase\":\"parse\",\"ticks\":75,"),
            "{line}"
        );
    }

    #[test]
    fn stdio_shutdown_stops_the_loop() {
        let lines = serve_lines(
            "{\"v\":1,\"id\":1,\"type\":\"shutdown\"}\n\
             {\"v\":1,\"id\":2,\"type\":\"health\"}\n",
            DEFAULT_MAX_LINE,
        );
        assert_eq!(lines.len(), 1, "requests after shutdown are not served");
        assert!(lines[0].contains("\"draining\":true"));
    }

    #[test]
    fn oversized_line_is_rejected_and_skipped() {
        let big = format!("{{\"v\":1,\"id\":1,\"pad\":\"{}\"}}", "x".repeat(300));
        let input = format!("{big}\n{{\"v\":1,\"id\":2,\"type\":\"health\"}}\n");
        let lines = serve_lines(&input, 128);
        assert_eq!(lines.len(), 2);
        assert!(
            lines[0].contains("\"kind\":\"oversized-line\""),
            "{}",
            lines[0]
        );
        assert!(lines[0].contains("\"id\":null"), "{}", lines[0]);
        assert!(lines[1].contains("\"ok\":true"), "{}", lines[1]);
    }

    #[test]
    fn capped_reader_classifies_eof() {
        let mut r = BufReader::new(&b"whole line\npartial"[..]);
        assert!(matches!(
            read_line_capped(&mut r, 64).expect("read"),
            LineRead::Line(l) if l == "whole line"
        ));
        assert!(matches!(
            read_line_capped(&mut r, 64).expect("read"),
            LineRead::Eof { mid_line: true }
        ));
        assert!(matches!(
            read_line_capped(&mut r, 64).expect("read"),
            LineRead::Eof { mid_line: false }
        ));
    }

    #[test]
    fn malformed_and_unknown_types_answered_inline() {
        let lines = serve_lines(
            "not json at all\n\
             {\"v\":9,\"id\":3,\"type\":\"health\"}\n\
             {\"v\":1,\"id\":4,\"type\":\"frobnicate\"}\n\
             {\"v\":1,\"id\":5,\"type\":\"health\"}\n",
            DEFAULT_MAX_LINE,
        );
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("\"kind\":\"malformed-json\""));
        assert!(lines[1].contains("\"kind\":\"version-mismatch\""));
        assert!(lines[2].contains("\"kind\":\"unknown-type\""));
        assert!(lines[3].contains("\"ok\":true"), "loop survives bad input");
    }
}
