//! A minimal hand-written JSON parser/encoder for the serving protocol.
//!
//! The workspace is dependency-free, so the line protocol cannot lean on
//! serde. This module implements exactly the JSON subset the protocol
//! needs: objects, arrays, strings (with standard escapes), finite
//! numbers, booleans, and `null`. Objects parse into a `BTreeMap`, so
//! every traversal and re-encoding is deterministic by construction.
//!
//! Parse errors are plain strings; the protocol layer wraps them into
//! `SoiError::Protocol { kind: MalformedJson, .. }` with the offending
//! byte offset, keeping this module free of policy.

use std::collections::BTreeMap;

/// Maximum nesting depth accepted by [`parse`]; a flat request protocol
/// never comes close, and the cap keeps adversarial input from
/// overflowing the parser's recursion.
const MAX_DEPTH: usize = 32;

/// A parsed JSON value. Numbers are stored as `f64` — protocol fields
/// are ids, node ids, and counts, all exactly representable.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; key-sorted, so re-encoding is deterministic.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a finite float.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object map.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// Member lookup on objects (`None` on non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj().and_then(|o| o.get(key))
    }
}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH}"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_obj(bytes, pos, depth),
        Some(b'[') => parse_arr(bytes, pos, depth),
        Some(b'"') => parse_str(bytes, pos).map(Value::Str),
        Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(bytes, pos),
        Some(c) => Err(format!("unexpected byte {:?} at {}", *c as char, *pos)),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "non-utf8 number")?;
    let n: f64 = text
        .parse()
        .map_err(|_| format!("bad number {text:?} at byte {start}"))?;
    if !n.is_finite() {
        return Err(format!("non-finite number {text:?} at byte {start}"));
    }
    Ok(Value::Num(n))
}

fn parse_str(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&c) = bytes.get(*pos) else {
            return Err("unterminated string".to_string());
        };
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = bytes.get(*pos) else {
                    return Err("unterminated escape".to_string());
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        *pos += 4;
                        // Surrogates are rejected rather than paired; the
                        // protocol never emits them.
                        out.push(char::from_u32(code).ok_or("surrogate \\u escape")?);
                    }
                    other => return Err(format!("bad escape \\{}", other as char)),
                }
            }
            _ => {
                // Copy the full UTF-8 sequence starting at this byte.
                let ch_start = *pos - 1;
                let tail = std::str::from_utf8(&bytes[ch_start..])
                    .map_err(|_| "non-utf8 string contents")?;
                let Some(ch) = tail.chars().next() else {
                    return Err("empty string tail".to_string());
                };
                out.push(ch);
                *pos = ch_start + ch.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
    *pos += 1; // '{'
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", *pos));
        }
        let key = parse_str(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {}", *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos, depth + 1)?;
        // Duplicate keys are ambiguous (last-wins vs first-wins differs
        // across parsers) — reject rather than silently pick one.
        if map.insert(key.clone(), value).is_some() {
            return Err(format!("duplicate object key {key:?}"));
        }
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats a finite `f64` as a JSON number, integers without a decimal
/// point (`null` for non-finite input).
pub fn fmt_num(v: f64) -> String {
    if !v.is_finite() {
        "null".to_string()
    } else if v.fract() == 0.0 && v.abs() <= 2f64.powi(53) {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_protocol_shaped_requests() {
        let v = parse(r#"{"v":1,"id":7,"type":"spread-estimate","seeds":[0,2],"samples":16}"#)
            .expect("parse");
        assert_eq!(v.get("v").and_then(Value::as_u64), Some(1));
        assert_eq!(
            v.get("type").and_then(Value::as_str),
            Some("spread-estimate")
        );
        let seeds: Vec<u64> = v
            .get("seeds")
            .and_then(Value::as_arr)
            .expect("array")
            .iter()
            .filter_map(Value::as_u64)
            .collect();
        assert_eq!(seeds, vec![0, 2]);
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse(r#"{"s":"a\"b\\c\nd\u0041é"}"#).expect("parse");
        assert_eq!(v.get("s").and_then(Value::as_str), Some("a\"b\\c\ndAé"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "1 2",
            "{\"a\":1}x",
            "\"unterminated",
            "{\"a\":\"\\q\"}",
            "nan",
            "1e999",
            "{\"a\":1,\"a\":2}",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn rejects_deep_nesting() {
        let deep = "[".repeat(40) + &"]".repeat(40);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn number_roundtrip_and_bounds() {
        assert_eq!(parse("42").expect("int"), Value::Num(42.0));
        assert_eq!(parse("-1.5").expect("float"), Value::Num(-1.5));
        assert_eq!(Value::Num(-1.0).as_u64(), None);
        assert_eq!(Value::Num(1.5).as_u64(), None);
        assert_eq!(fmt_num(3.0), "3");
        assert_eq!(fmt_num(0.25), "0.25");
        assert_eq!(fmt_num(f64::NAN), "null");
    }

    #[test]
    fn escape_roundtrips_through_parse() {
        let original = "line1\nline2\t\"quoted\" \\slash\u{1}";
        let doc = format!("{{\"s\":\"{}\"}}", escape(original));
        let v = parse(&doc).expect("parse");
        assert_eq!(v.get("s").and_then(Value::as_str), Some(original));
    }
}
