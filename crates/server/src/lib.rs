//! # soi-server
//!
//! A long-lived query-serving daemon for spheres of influence.
//!
//! One-shot CLI runs pay the cascade-index build (ℓ sampled worlds,
//! Algorithm 1) on every invocation. `soi serve` pays it once: graphs
//! load at startup, indexes build into a fingerprint-keyed LRU cache
//! ([`cache`]), and queries are answered over a line-delimited JSON
//! protocol ([`protocol`]) on a loop-back TCP listener — or over
//! stdin/stdout for hermetic tests ([`daemon::run_stdio`]).
//!
//! The serving pipeline is built from the substrate the rest of the
//! workspace already uses:
//!
//! - a fixed worker pool over a **bounded** queue ([`queue`],
//!   [`worker`]): a full queue rejects immediately with a typed
//!   `queue-full` error instead of stacking latency;
//! - per-request **deadlines** mapped onto deterministic
//!   `soi_util::runtime::Deadline` tick budgets: a slow query returns a
//!   well-formed `partial` response covering the exact prefix of work
//!   done, never a stalled worker;
//! - `soi-obs` metrics throughout (request latency wall-histogram,
//!   queue depth, rejection/disconnect counters), flushed as a final
//!   report on graceful shutdown.
//!
//! `soi route` ([`router`]) is the front-end shard router: the same
//! wire protocol, consistent-hashing graph names across a fleet of
//! `soi serve` daemons with replica failover, drain/rebalance, and
//! fabric-wide stats aggregation.
//!
//! `soi query` ([`client`]) is the companion batch client. The wire
//! protocol, deadline and admission semantics, and exit codes are
//! specified in `docs/SERVING.md`.
//!
//! This is the only crate in the workspace permitted to touch
//! `std::net` (enforced by `cargo xtask lint`'s hermeticity pass).

pub mod cache;
pub mod client;
pub mod daemon;
pub mod engine;
pub mod json;
pub mod protocol;
pub mod queue;
pub mod router;
pub mod stats;
pub mod trace;
pub mod worker;

pub use client::{run_queries, send_one, send_stream, BatchReport, QueryConfig};
pub use daemon::{run_stdio, run_tcp, ServeConfig, STATS_VERSION};
pub use engine::{EngineConfig, ServerEngine};
pub use protocol::{Envelope, Request, DEFAULT_MAX_LINE, PROTOCOL_VERSION};
pub use router::{run_router, RouterConfig};
pub use stats::{run_stats, StatsConfig, StatsFormat};
pub use trace::{Phase, PhaseTrace, SlowLog};

#[cfg(test)]
mod tests {
    #[test]
    fn reexports_resolve() {
        assert_eq!(super::PROTOCOL_VERSION, 1);
        assert_eq!(super::DEFAULT_MAX_LINE, 64 * 1024);
    }
}
