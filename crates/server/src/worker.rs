//! The fixed worker pool: N threads draining the bounded job queue.
//!
//! Each job carries a parsed request plus a one-shot reply channel back
//! to the connection thread that submitted it. Workers never die on a
//! bad request — every failure path encodes a typed error response and
//! moves on — and [`WorkerPool::shutdown`] closes the queue, drains
//! every queued job, waits for in-flight work, and joins the threads:
//! the graceful-drain half of the daemon's shutdown sequence.

use crate::engine::ServerEngine;
use crate::protocol::{self, Envelope};
use crate::queue::{Bounded, PushError};
use soi_util::{ProtoErrorKind, SoiError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Instant;

/// One queued compute request.
pub struct Job {
    /// The parsed request envelope.
    pub envelope: Envelope,
    /// Where the encoded response line goes. Send failures are ignored:
    /// a connection that died while its job was queued just discards
    /// the result.
    pub reply: mpsc::Sender<String>,
}

/// A cloneable submission handle onto a running pool's queue; held by
/// every connection thread.
#[derive(Clone)]
pub struct PoolHandle {
    queue: Arc<Bounded<Job>>,
    in_flight: Arc<AtomicU64>,
}

/// The pool itself, held by the daemon (owns the worker threads).
pub struct WorkerPool {
    handle: PoolHandle,
    handles: Vec<JoinHandle<()>>,
}

/// Executes one job to an encoded response line; shared by the pool
/// workers and the single-threaded stdio front-end.
pub fn execute_job(engine: &ServerEngine, envelope: &Envelope) -> String {
    let started = Instant::now();
    let result = engine.execute(&envelope.req);
    let wall_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    soi_obs::wall_hist("server.request_ns").observe_ns(wall_ns);
    match result {
        Ok(out) => match out.partial {
            None => protocol::encode_ok(envelope.id, &out.payload, wall_ns),
            Some((done, total, reason)) => {
                soi_obs::counter_add!("server.partial_responses", 1);
                protocol::encode_partial(envelope.id, &out.payload, done, total, reason, wall_ns)
            }
        },
        Err(err) => protocol::encode_error(Some(envelope.id), &err),
    }
}

impl WorkerPool {
    /// Starts `workers` threads (min 1) over a queue of `queue_cap`.
    pub fn start(engine: Arc<ServerEngine>, workers: usize, queue_cap: usize) -> Self {
        let queue: Arc<Bounded<Job>> = Arc::new(Bounded::new(queue_cap));
        let in_flight = Arc::new(AtomicU64::new(0));
        let handles = (0..workers.max(1))
            .map(|_| {
                let queue = Arc::clone(&queue);
                let engine = Arc::clone(&engine);
                let in_flight = Arc::clone(&in_flight);
                std::thread::spawn(move || {
                    while let Some(job) = queue.pop() {
                        in_flight.fetch_add(1, Ordering::SeqCst);
                        let line = execute_job(&engine, &job.envelope);
                        let _ = job.reply.send(line);
                        in_flight.fetch_sub(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        WorkerPool {
            handle: PoolHandle { queue, in_flight },
            handles,
        }
    }

    /// A cloneable submission handle for connection threads.
    pub fn handle(&self) -> PoolHandle {
        self.handle.clone()
    }

    /// Graceful drain: rejects future submissions, finishes every
    /// queued and in-flight job, and joins the worker threads.
    pub fn shutdown(self) {
        self.handle.queue.close();
        for handle in self.handles {
            let _ = handle.join();
        }
    }
}

impl PoolHandle {
    /// Submits a job; on a full (or closing) queue the job is rejected
    /// immediately with a typed `queue-full` error sent on its own
    /// reply channel.
    pub fn submit(&self, job: Job) {
        match self.queue.push(job) {
            Ok(()) => {}
            Err(PushError::Full(job)) | Err(PushError::Closed(job)) => {
                soi_obs::counter_add!("server.rejected_queue_full", 1);
                let err = SoiError::protocol(
                    ProtoErrorKind::QueueFull,
                    "request queue is full; retry later",
                );
                let _ = job
                    .reply
                    .send(protocol::encode_error(Some(job.envelope.id), &err));
            }
        }
    }

    /// Jobs waiting in the queue (racy snapshot, for stats).
    pub fn queue_depth(&self) -> usize {
        self.queue.depth()
    }

    /// Jobs currently executing (racy snapshot, for stats).
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::SeqCst)
    }

    #[cfg(test)]
    pub(crate) fn close_for_test(&self) {
        self.queue.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::protocol::Request;
    use soi_graph::{gen, ProbGraph};

    fn engine() -> Arc<ServerEngine> {
        let pg = ProbGraph::fixed(gen::path(8), 1.0).expect("graph");
        let mut engine = ServerEngine::new(EngineConfig {
            num_worlds: 4,
            ..EngineConfig::default()
        });
        engine.add_graph("g", pg);
        Arc::new(engine)
    }

    fn spread_job(id: u64, reply: mpsc::Sender<String>) -> Job {
        Job {
            envelope: Envelope {
                id,
                req: Request::SpreadEstimate {
                    graph: "g".into(),
                    seeds: vec![0],
                    samples: 4,
                    seed: 1,
                    deadline_ticks: None,
                },
            },
            reply,
        }
    }

    #[test]
    fn pool_executes_and_drains_on_shutdown() {
        let pool = WorkerPool::start(engine(), 2, 16);
        let handle = pool.handle();
        let (tx, rx) = mpsc::channel();
        for id in 0..8 {
            handle.submit(spread_job(id, tx.clone()));
        }
        drop(tx);
        pool.shutdown();
        let responses: Vec<String> = rx.iter().collect();
        assert_eq!(responses.len(), 8, "drain must answer every accepted job");
        for line in &responses {
            assert!(line.contains("\"status\":\"ok\""), "{line}");
        }
    }

    #[test]
    fn overflow_is_rejected_typed_not_dropped() {
        // No workers draining: start the pool, saturate the queue faster
        // than 1 worker can drain a slow-ish job mix, using cap 1 and
        // submissions back-to-back. To make it deterministic, close the
        // queue first so every submit takes the rejection path.
        let pool = WorkerPool::start(engine(), 1, 1);
        let handle = pool.handle();
        let (tx, rx) = mpsc::channel();
        handle.close_for_test();
        handle.submit(spread_job(9, tx));
        let line = rx.recv().expect("rejection response");
        assert!(line.contains("\"kind\":\"queue-full\""), "{line}");
        assert!(line.contains("\"id\":9"), "{line}");
        pool.shutdown();
    }

    #[test]
    fn bad_request_does_not_kill_worker() {
        let pool = WorkerPool::start(engine(), 1, 4);
        let handle = pool.handle();
        let (tx, rx) = mpsc::channel();
        handle.submit(Job {
            envelope: Envelope {
                id: 1,
                req: Request::TypicalCascade {
                    graph: "missing".into(),
                    source: 0,
                    deadline_ticks: None,
                },
            },
            reply: tx.clone(),
        });
        assert!(rx.recv().expect("error response").contains("unknown-graph"));
        // The same (sole) worker still serves the next job.
        handle.submit(spread_job(2, tx));
        assert!(rx
            .recv()
            .expect("ok response")
            .contains("\"status\":\"ok\""));
        pool.shutdown();
    }
}
