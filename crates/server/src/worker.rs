//! The supervised worker pool: N threads draining the bounded job queue.
//!
//! Each job carries a parsed request plus a one-shot reply channel back
//! to the connection thread that submitted it. Workers never die on a
//! bad request — every failure path encodes a typed error response and
//! moves on — and a worker that *panics* mid-job is supervised:
//! `catch_unwind` converts the panic into a typed `internal-error`
//! response for the in-flight request, and the dying thread spawns its
//! own replacement under a fresh, monotonically increasing generation id
//! before exiting (counters `server.worker_panics` /
//! `server.worker_respawns`). The daemon therefore never loses capacity
//! to a poisoned request.
//!
//! Admission control is load-shedding, not queueing: a full queue
//! rejects immediately with a structured `queue-full` error carrying the
//! observed depth and a deterministic `retry_after_ticks` hint
//! ([`soi_util::backoff::retry_after_ticks`]).
//!
//! [`WorkerPool::shutdown`] closes the queue, drains every queued job,
//! waits for in-flight work, and joins the threads (including any
//! respawned generations): the graceful-drain half of the daemon's
//! shutdown sequence.

use crate::engine::{ExecOutput, ServerEngine};
use crate::protocol::{self, Envelope};
use crate::queue::{Bounded, PushError};
use crate::trace::{PhaseTrace, SlowLog};
use soi_util::{ProtoErrorKind, SoiError};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

/// One queued compute request.
pub struct Job {
    /// The parsed request envelope.
    pub envelope: Envelope,
    /// Where the encoded response line goes. Send failures are ignored:
    /// a connection that died while its job was queued just discards
    /// the result.
    pub reply: mpsc::Sender<String>,
    /// Phase timeline accumulated so far (the submitter's `parse`
    /// phase); workers append `queue_wait`/`cache`/`compute`/`serialize`.
    trace: PhaseTrace,
    /// When the job was submitted; the dequeuing worker turns this into
    /// the `queue_wait` phase and the `server.queue_wait_ns` histogram.
    enqueued: Instant,
}

impl Job {
    /// A job with an empty phase timeline.
    pub fn new(envelope: Envelope, reply: mpsc::Sender<String>) -> Job {
        Job::with_trace(envelope, reply, PhaseTrace::new())
    }

    /// A job carrying the submitter's already-recorded phases.
    pub fn with_trace(envelope: Envelope, reply: mpsc::Sender<String>, trace: PhaseTrace) -> Job {
        Job {
            envelope,
            reply,
            trace,
            enqueued: Instant::now(),
        }
    }
}

/// State shared by the pool owner, every submission handle, and every
/// worker thread — including workers spawned as panic replacements.
struct Shared {
    engine: Arc<ServerEngine>,
    queue: Bounded<Job>,
    queue_cap: usize,
    in_flight: AtomicU64,
    /// Threshold-gated slow-query log shared by every generation.
    slow: Option<Arc<SlowLog>>,
    /// Next worker generation id; strictly increasing across respawns.
    next_generation: AtomicU64,
    /// Join handles of live workers. A dying worker registers its
    /// replacement's handle here before exiting, so shutdown can always
    /// join the current generation.
    threads: Mutex<Vec<JoinHandle<()>>>,
}

/// A cloneable submission handle onto a running pool's queue; held by
/// every connection thread.
#[derive(Clone)]
pub struct PoolHandle {
    shared: Arc<Shared>,
}

/// The pool itself, held by the daemon (owns the worker threads).
pub struct WorkerPool {
    handle: PoolHandle,
}

/// Executes one job to an encoded response line; shared by the pool
/// workers and the single-threaded stdio front-end.
pub fn execute_job(engine: &ServerEngine, envelope: &Envelope) -> String {
    let mut trace = PhaseTrace::new();
    execute_job_traced(engine, envelope, &mut trace, None)
}

fn encode_line(id: u64, out: &ExecOutput, payload: &str, wall_ns: u64) -> String {
    match out.partial {
        None => protocol::encode_ok(id, payload, wall_ns),
        Some((done, total, reason)) => {
            protocol::encode_partial(id, payload, done, total, reason, wall_ns)
        }
    }
}

/// [`execute_job`] with phase accounting: appends the engine's
/// `cache`/`compute` phases and a `serialize` phase (ticks = payload
/// bytes — deterministic, unlike the full line whose embedded `wall_ns`
/// digit count varies) to `trace`, embeds the timeline in the response
/// when the request opted in with `"trace":true`, and offers the
/// completed timeline to the slow-query log.
pub fn execute_job_traced(
    engine: &ServerEngine,
    envelope: &Envelope,
    trace: &mut PhaseTrace,
    slow: Option<&SlowLog>,
) -> String {
    let started = Instant::now();
    let result = engine.execute_traced(&envelope.req, trace);
    let wall_ns = crate::trace::elapsed_ns(started);
    soi_obs::wall_hist("server.request_ns").observe_ns(wall_ns);
    let line = match result {
        Ok(out) => {
            if out.partial.is_some() {
                soi_obs::counter_add!("server.partial_responses", 1);
            }
            let serialize_start = Instant::now();
            let line = encode_line(envelope.id, &out, &out.payload, wall_ns);
            trace.record(
                "serialize",
                out.payload.len() as u64,
                crate::trace::elapsed_ns(serialize_start),
            );
            if envelope.trace {
                // Opt-in only: re-encode with the timeline attached, so
                // the untraced path never pays for the fragment.
                let payload = format!("{},{}", out.payload, trace.json_fragment());
                encode_line(envelope.id, &out, &payload, wall_ns)
            } else {
                line
            }
        }
        Err(err) => protocol::encode_error(Some(envelope.id), &err),
    };
    if let Some(slow) = slow {
        slow.maybe_log(envelope.id, envelope.req.type_name(), trace);
    }
    line
}

/// The worker loop for one generation. Returns normally on queue close;
/// on a panic mid-job the unwind is caught, the in-flight request gets a
/// typed `internal-error` response, and a replacement generation is
/// spawned before this thread exits.
fn worker_loop(shared: Arc<Shared>, generation: u64) {
    use soi_obs::perthread;
    // Each generation owns a slot in the per-thread timing plane; late
    // generations (respawns past the plane's capacity) share the last
    // slot rather than going untimed.
    let _reg = perthread::register(generation as usize);
    let loop_start = Instant::now();
    loop {
        // Blocking on the empty queue is idle time, not busy time.
        let Some(mut job) = perthread::timed_region(perthread::record_idle, || shared.queue.pop())
        else {
            break;
        };
        let wait_ns = crate::trace::elapsed_ns(job.enqueued);
        soi_obs::wall_hist("server.queue_wait_ns").observe_ns(wait_ns);
        job.trace.record("queue_wait", 0, wait_ns);
        // ordering: in_flight is a stats counter read only through racy
        // snapshots; Relaxed RMW keeps it exact without fencing the
        // hot dispatch path.
        shared.in_flight.fetch_add(1, Ordering::Relaxed);
        // AssertUnwindSafe: engine state is either immutable (graphs,
        // config) or lock-guarded with poison recovery (caches), so a
        // half-finished job cannot leave it inconsistent.
        let outcome = perthread::timed_region(perthread::record_busy, || {
            std::panic::catch_unwind(AssertUnwindSafe(|| {
                soi_util::failpoint_crash!("server.worker.dispatch");
                execute_job_traced(
                    &shared.engine,
                    &job.envelope,
                    &mut job.trace,
                    shared.slow.as_deref(),
                )
            }))
        });
        // ordering: see the matching fetch_add above.
        shared.in_flight.fetch_sub(1, Ordering::Relaxed);
        perthread::record_items(1);
        match outcome {
            Ok(line) => {
                // Handing the result back to the connection thread is
                // merge time in the attribution identity.
                perthread::timed_region(perthread::record_merge, || {
                    let _ = job.reply.send(line);
                });
            }
            Err(_panic) => {
                soi_obs::counter_add!("server.worker_panics", 1);
                let err = SoiError::protocol(
                    ProtoErrorKind::Internal,
                    format!("worker generation {generation} panicked executing the request"),
                );
                let _ = job
                    .reply
                    .send(protocol::encode_error(Some(job.envelope.id), &err));
                respawn(&shared);
                perthread::record_lifetime(crate::trace::elapsed_ns(loop_start));
                return;
            }
        }
    }
    perthread::record_lifetime(crate::trace::elapsed_ns(loop_start));
}

/// Spawns the replacement for a panicked worker under a fresh generation
/// id, registering its join handle for shutdown.
fn respawn(shared: &Arc<Shared>) {
    soi_obs::counter_add!("server.worker_respawns", 1);
    // ordering: uniqueness of generation ids comes from RMW atomicity
    // alone; nothing is published through the counter, so Relaxed.
    let generation = shared.next_generation.fetch_add(1, Ordering::Relaxed);
    let clone = Arc::clone(shared);
    let handle = std::thread::spawn(move || worker_loop(clone, generation));
    shared
        .threads
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .push(handle);
}

impl WorkerPool {
    /// Starts `workers` threads (min 1) over a queue of `queue_cap`.
    pub fn start(engine: Arc<ServerEngine>, workers: usize, queue_cap: usize) -> Self {
        WorkerPool::start_with(engine, workers, queue_cap, None)
    }

    /// [`Self::start`] with an optional slow-query log shared by every
    /// worker generation.
    pub fn start_with(
        engine: Arc<ServerEngine>,
        workers: usize,
        queue_cap: usize,
        slow: Option<Arc<SlowLog>>,
    ) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            engine,
            queue: Bounded::new(queue_cap),
            queue_cap,
            in_flight: AtomicU64::new(0),
            slow,
            next_generation: AtomicU64::new(workers as u64),
            threads: Mutex::new(Vec::with_capacity(workers)),
        });
        for generation in 0..workers as u64 {
            let clone = Arc::clone(&shared);
            let handle = std::thread::spawn(move || worker_loop(clone, generation));
            shared
                .threads
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(handle);
        }
        WorkerPool {
            handle: PoolHandle { shared },
        }
    }

    /// A cloneable submission handle for connection threads.
    pub fn handle(&self) -> PoolHandle {
        self.handle.clone()
    }

    /// Graceful drain: rejects future submissions, finishes every
    /// queued and in-flight job, and joins the worker threads — looping
    /// because a panicking worker may have registered a replacement
    /// generation while earlier handles were being joined.
    pub fn shutdown(self) {
        let shared = &self.handle.shared;
        shared.queue.close();
        loop {
            let batch: Vec<JoinHandle<()>> = {
                let mut threads = shared
                    .threads
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                std::mem::take(&mut *threads)
            };
            if batch.is_empty() {
                return;
            }
            for handle in batch {
                let _ = handle.join();
            }
        }
    }
}

impl PoolHandle {
    /// Submits a job; on a full (or closing) queue the job is shed
    /// immediately with a structured `queue-full` error carrying the
    /// observed queue depth and a deterministic retry hint, sent on its
    /// own reply channel.
    pub fn submit(&self, job: Job) {
        match self.shared.queue.push(job) {
            Ok(()) => {}
            Err(PushError::Full(job)) | Err(PushError::Closed(job)) => {
                soi_obs::counter_add!("server.rejected_queue_full", 1);
                soi_obs::counter_add!("server.requests_shed", 1);
                let depth = self.shared.queue.depth();
                let hint = soi_util::backoff::retry_after_ticks(depth, self.shared.queue_cap);
                let _ = job
                    .reply
                    .send(protocol::encode_queue_full(job.envelope.id, depth, hint));
            }
        }
    }

    /// Jobs waiting in the queue (racy snapshot, for stats).
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.depth()
    }

    /// Jobs currently executing (racy snapshot, for stats).
    pub fn in_flight(&self) -> u64 {
        // ordering: racy stats snapshot by contract (see doc comment).
        self.shared.in_flight.load(Ordering::Relaxed)
    }

    /// Worker generations spawned so far (initial + respawned); the
    /// next respawn takes this id.
    pub fn generations(&self) -> u64 {
        // ordering: monotonic-counter snapshot; callers that need the
        // post-respawn value synchronize through the reply channel.
        self.shared.next_generation.load(Ordering::Relaxed)
    }

    #[cfg(test)]
    pub(crate) fn close_for_test(&self) {
        self.shared.queue.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::protocol::Request;
    use soi_graph::{gen, ProbGraph};

    fn engine() -> Arc<ServerEngine> {
        let pg = ProbGraph::fixed(gen::path(8), 1.0).expect("graph");
        let mut engine = ServerEngine::new(EngineConfig {
            num_worlds: 4,
            ..EngineConfig::default()
        });
        engine.add_graph("g", pg);
        Arc::new(engine)
    }

    fn spread_job(id: u64, reply: mpsc::Sender<String>) -> Job {
        Job::new(
            Envelope {
                id,
                req: Request::SpreadEstimate {
                    graph: "g".into(),
                    seeds: vec![0],
                    samples: 4,
                    seed: 1,
                    deadline_ticks: None,
                    degrade: false,
                    backend: soi_influence::BackendKind::Cascade,
                    sketch_k: None,
                },
                trace: false,
            },
            reply,
        )
    }

    #[test]
    fn traced_request_embeds_phase_timeline() {
        let _g = soi_util::failpoint::test_guard();
        let engine = engine();
        let envelope = Envelope {
            id: 3,
            req: Request::SpreadEstimate {
                graph: "g".into(),
                seeds: vec![0],
                samples: 4,
                seed: 1,
                deadline_ticks: None,
                degrade: false,
                backend: soi_influence::BackendKind::Cascade,
                sketch_k: None,
            },
            trace: true,
        };
        let mut trace = PhaseTrace::new();
        trace.record("parse", 52, 777);
        let line = execute_job_traced(&engine, &envelope, &mut trace, None);
        assert!(line.contains("\"status\":\"ok\""), "{line}");
        assert!(
            line.contains("\"trace\":[{\"phase\":\"parse\",\"ticks\":52,"),
            "{line}"
        );
        for phase in ["cache", "compute", "serialize"] {
            assert!(line.contains(&format!("{{\"phase\":\"{phase}\"")), "{line}");
        }
        // Untraced requests answer without the timeline.
        let untraced = Envelope {
            trace: false,
            ..envelope
        };
        let line = execute_job(&engine, &untraced);
        assert!(!line.contains("\"trace\":["), "{line}");
    }

    #[test]
    fn worker_records_queue_wait_and_offers_slow_log() {
        let _g = soi_util::failpoint::test_guard();
        soi_obs::reset();
        // Threshold 1: the 4-sample spread job (4 compute ticks) always
        // reaches it, so the pool's worker must hand the completed
        // timeline to the log.
        let (log_tx, log_rx) = mpsc::channel::<String>();
        struct ChannelWriter(mpsc::Sender<String>);
        impl std::io::Write for ChannelWriter {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                let _ = self.0.send(String::from_utf8_lossy(buf).into_owned());
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let slow = Arc::new(SlowLog::new(1, Box::new(ChannelWriter(log_tx))));
        let pool = WorkerPool::start_with(engine(), 1, 4, Some(slow));
        let handle = pool.handle();
        let (tx, rx) = mpsc::channel();
        handle.submit(spread_job(5, tx));
        assert!(rx.recv().expect("reply").contains("\"status\":\"ok\""));
        let logged = log_rx.recv().expect("slow-query line");
        assert!(
            logged.contains("\"type_name\":\"spread-estimate\""),
            "{logged}"
        );
        assert!(
            logged.contains("{\"phase\":\"queue_wait\",\"ticks\":0,"),
            "{logged}"
        );
        pool.shutdown();
        let wait = soi_obs::wall_hist("server.queue_wait_ns").snapshot();
        assert_eq!(wait.count, 1, "queue wait observed on every dequeue");
    }

    #[test]
    fn pool_executes_and_drains_on_shutdown() {
        let _g = soi_util::failpoint::test_guard();
        let pool = WorkerPool::start(engine(), 2, 16);
        let handle = pool.handle();
        let (tx, rx) = mpsc::channel();
        for id in 0..8 {
            handle.submit(spread_job(id, tx.clone()));
        }
        drop(tx);
        pool.shutdown();
        let responses: Vec<String> = rx.iter().collect();
        assert_eq!(responses.len(), 8, "drain must answer every accepted job");
        for line in &responses {
            assert!(line.contains("\"status\":\"ok\""), "{line}");
        }
    }

    #[test]
    fn overflow_is_rejected_typed_not_dropped() {
        let _g = soi_util::failpoint::test_guard();
        // No workers draining: start the pool, saturate the queue faster
        // than 1 worker can drain a slow-ish job mix, using cap 1 and
        // submissions back-to-back. To make it deterministic, close the
        // queue first so every submit takes the rejection path.
        let pool = WorkerPool::start(engine(), 1, 1);
        let handle = pool.handle();
        let (tx, rx) = mpsc::channel();
        handle.close_for_test();
        handle.submit(spread_job(9, tx));
        let line = rx.recv().expect("rejection response");
        assert!(line.contains("\"kind\":\"queue-full\""), "{line}");
        assert!(line.contains("\"id\":9"), "{line}");
        assert!(line.contains("\"queue_depth\":"), "{line}");
        assert!(line.contains("\"retry_after_ticks\":"), "{line}");
        pool.shutdown();
    }

    #[test]
    fn bad_request_does_not_kill_worker() {
        let _g = soi_util::failpoint::test_guard();
        let pool = WorkerPool::start(engine(), 1, 4);
        let handle = pool.handle();
        let (tx, rx) = mpsc::channel();
        handle.submit(Job::new(
            Envelope {
                id: 1,
                req: Request::TypicalCascade {
                    graph: "missing".into(),
                    source: 0,
                    deadline_ticks: None,
                    degrade: false,
                },
                trace: false,
            },
            tx.clone(),
        ));
        assert!(rx.recv().expect("error response").contains("unknown-graph"));
        // The same (sole) worker still serves the next job.
        handle.submit(spread_job(2, tx));
        assert!(rx
            .recv()
            .expect("ok response")
            .contains("\"status\":\"ok\""));
        pool.shutdown();
    }

    #[test]
    fn panicked_worker_answers_typed_and_is_respawned() {
        let _g = soi_util::failpoint::test_guard();
        soi_util::failpoint::install("server.worker.dispatch=panic@1").expect("arm");
        let pool = WorkerPool::start(engine(), 1, 4);
        let handle = pool.handle();
        assert_eq!(handle.generations(), 1);
        let (tx, rx) = mpsc::channel();
        // First job panics the sole worker: the request still gets a
        // typed internal-error response.
        handle.submit(spread_job(1, tx.clone()));
        let line = rx.recv().expect("panic response");
        assert!(line.contains("\"kind\":\"internal-error\""), "{line}");
        assert!(line.contains("\"id\":1"), "{line}");
        // The replacement generation serves subsequent requests.
        handle.submit(spread_job(2, tx));
        let line = rx.recv().expect("post-respawn response");
        assert!(line.contains("\"status\":\"ok\""), "{line}");
        assert_eq!(handle.generations(), 2, "one respawn");
        pool.shutdown();
        soi_util::failpoint::clear();
    }

    #[test]
    fn shutdown_joins_respawned_generations() {
        let _g = soi_util::failpoint::test_guard();
        soi_util::failpoint::install("server.worker.dispatch=panic@1").expect("arm");
        let pool = WorkerPool::start(engine(), 2, 16);
        let handle = pool.handle();
        let (tx, rx) = mpsc::channel();
        for id in 0..6 {
            handle.submit(spread_job(id, tx.clone()));
        }
        drop(tx);
        pool.shutdown();
        let responses: Vec<String> = rx.iter().collect();
        assert_eq!(responses.len(), 6, "every accepted job is answered");
        let errors = responses
            .iter()
            .filter(|l| l.contains("internal-error"))
            .count();
        assert_eq!(errors, 1, "exactly the panicked job errors: {responses:?}");
        assert_eq!(handle.generations(), 3, "2 initial + 1 respawn");
        soi_util::failpoint::clear();
    }
}
