//! # soi-datasets
//!
//! Synthetic stand-ins for the paper's twelve dataset configurations
//! (§6.1–6.2, Table 1). The original datasets (Digg, Flixster, Twitter
//! crawls; SNAP NetHEPT/Epinions/Slashdot) are not redistributable, so
//! each is replaced by a generator preserving its *structural role* in the
//! evaluation — see DESIGN.md §2 for the substitution rationale. Scales
//! default to ~1–4K nodes so the full suite runs in CI time; every
//! experiment binary exposes `--scale` to grow them.
//!
//! Naming follows the paper: `-S` (Saito-learnt), `-G` (Goyal-learnt),
//! `-W` (weighted cascade), `-F` (fixed `p = 0.1`).

use soi_graph::{gen, DiGraph, ProbGraph};
use soi_problog::generate::LogGenConfig;
use soi_problog::{assign, generate_log, learn_goyal, learn_saito, to_prob_graph, SaitoConfig};
use soi_util::rng::derive_seed;
use soi_util::rng::Xoshiro256pp;

/// How a configuration's probabilities are produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProbSource {
    /// Learnt from a synthetic action log with Saito et al.'s EM (`-S`).
    Saito,
    /// Learnt from a synthetic action log with Goyal et al.'s
    /// frequentist estimator (`-G`).
    Goyal,
    /// Assigned: weighted cascade `1/inDeg(v)` (`-W`).
    WeightedCascade,
    /// Assigned: fixed `p = 0.1` (`-F`).
    Fixed,
    /// Assigned: trivalency, uniform from `{0.1, 0.01, 0.001}` (`-T`) —
    /// an extension beyond the paper's four sources; a standard benchmark
    /// assignment elsewhere in the influence-maximization literature.
    Trivalency,
}

impl ProbSource {
    /// The paper's dataset-name suffix.
    pub fn suffix(self) -> &'static str {
        match self {
            ProbSource::Saito => "S",
            ProbSource::Goyal => "G",
            ProbSource::WeightedCascade => "W",
            ProbSource::Fixed => "F",
            ProbSource::Trivalency => "T",
        }
    }

    /// Whether probabilities are learnt from a log (vs assigned).
    pub fn is_learnt(self) -> bool {
        matches!(self, ProbSource::Saito | ProbSource::Goyal)
    }
}

/// One of the six base networks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Network {
    /// Stand-in for Digg: directed preferential-attachment fan network.
    DiggSyn,
    /// Stand-in for Flixster: large symmetrized preferential attachment.
    FlixsterSyn,
    /// Stand-in for Twitter: dense symmetrized power-law graph.
    TwitterSyn,
    /// Stand-in for NetHEPT: sparse small-world (symmetrized) network.
    NethepSyn,
    /// Stand-in for Epinions: directed power-law configuration model.
    EpinionsSyn,
    /// Stand-in for Slashdot: dense directed preferential attachment.
    SlashdotSyn,
}

impl Network {
    /// All six networks, in the paper's Table 1 order.
    pub fn all() -> [Network; 6] {
        [
            Network::DiggSyn,
            Network::FlixsterSyn,
            Network::TwitterSyn,
            Network::NethepSyn,
            Network::EpinionsSyn,
            Network::SlashdotSyn,
        ]
    }

    /// Display name (e.g. `digg-syn`).
    pub fn name(self) -> &'static str {
        match self {
            Network::DiggSyn => "digg-syn",
            Network::FlixsterSyn => "flixster-syn",
            Network::TwitterSyn => "twitter-syn",
            Network::NethepSyn => "nethept-syn",
            Network::EpinionsSyn => "epinions-syn",
            Network::SlashdotSyn => "slashdot-syn",
        }
    }

    /// Whether the original dataset is directed (Table 1).
    pub fn directed(self) -> bool {
        matches!(
            self,
            Network::DiggSyn | Network::EpinionsSyn | Network::SlashdotSyn
        )
    }

    /// Probability sources evaluated on this network in the paper:
    /// learnt (`-S`, `-G`) for the activity-log datasets, assigned
    /// (`-W`, `-F`) for the SNAP ones.
    pub fn sources(self) -> [ProbSource; 2] {
        if self.has_activity_log() {
            [ProbSource::Saito, ProbSource::Goyal]
        } else {
            [ProbSource::WeightedCascade, ProbSource::Fixed]
        }
    }

    /// Whether this network comes with a (synthetic) activity log.
    pub fn has_activity_log(self) -> bool {
        matches!(
            self,
            Network::DiggSyn | Network::FlixsterSyn | Network::TwitterSyn
        )
    }

    /// Base node count at `scale = 1.0`.
    fn base_nodes(self) -> usize {
        match self {
            Network::DiggSyn => 2000,
            Network::FlixsterSyn => 3000,
            Network::TwitterSyn => 1200,
            Network::NethepSyn => 1500,
            Network::EpinionsSyn => 2000,
            Network::SlashdotSyn => 2000,
        }
    }

    /// Builds the topology at the given scale. Deterministic in `seed`.
    pub fn build_graph(self, scale: f64, seed: u64) -> DiGraph {
        assert!(scale > 0.0, "scale must be positive");
        let n = ((self.base_nodes() as f64 * scale) as usize).max(32);
        let mut rng = Xoshiro256pp::seed_from_u64(derive_seed(seed, self as u64));
        match self {
            // Directed fan network, heavy-tailed in-degree.
            Network::DiggSyn => gen::barabasi_albert(n, 6, true, &mut rng),
            // Undirected (symmetrized), denser.
            Network::FlixsterSyn => gen::barabasi_albert(n, 4, false, &mut rng),
            // Dense reshare network, undirected.
            Network::TwitterSyn => gen::barabasi_albert(n, 12, false, &mut rng),
            // Sparse citation network: heavy-tailed degrees (hubs make the
            // fixed-p model supercritical, as on the real NetHEPT).
            Network::NethepSyn => gen::barabasi_albert(n, 4, false, &mut rng),
            // Directed heavy-tailed trust network.
            Network::EpinionsSyn => gen::powerlaw_configuration(n, 1.7, n / 5, &mut rng),
            // Dense directed social news network.
            Network::SlashdotSyn => gen::barabasi_albert(n, 20, true, &mut rng),
        }
    }
}

/// A fully-built dataset configuration (network + probabilities).
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Network identity.
    pub network: Network,
    /// How probabilities were produced.
    pub source: ProbSource,
    /// The probabilistic graph experiments run on.
    pub graph: ProbGraph,
    /// For learnt configurations: the planted ground-truth probabilities
    /// (aligned with the *topology's* CSR edges) for learner diagnostics.
    pub ground_truth: Option<Vec<f64>>,
}

impl Dataset {
    /// Paper-style display name, e.g. `digg-syn-S`.
    pub fn name(&self) -> String {
        format!("{}-{}", self.network.name(), self.source.suffix())
    }
}

/// Builds one configuration. Deterministic in `(scale, seed)`.
///
/// For learnt sources the full pipeline runs: plant heterogeneous
/// ground-truth probabilities, simulate an action log, learn from the log
/// only (the paper's observational setting), and drop zero-evidence arcs.
pub fn build(network: Network, source: ProbSource, scale: f64, seed: u64) -> Dataset {
    let topology = network.build_graph(scale, seed);
    match source {
        ProbSource::WeightedCascade => Dataset {
            network,
            source,
            graph: assign::weighted_cascade(topology),
            ground_truth: None,
        },
        ProbSource::Fixed => Dataset {
            network,
            source,
            // xtask-allow: panic_policy — 0.1 is a valid probability.
            graph: assign::fixed(topology, 0.1).expect("0.1 is valid"),
            ground_truth: None,
        },
        ProbSource::Trivalency => {
            let mut rng = Xoshiro256pp::seed_from_u64(derive_seed(seed, 0x747269));
            Dataset {
                network,
                source,
                graph: assign::trivalency(topology, &mut rng),
                ground_truth: None,
            }
        }
        ProbSource::Saito | ProbSource::Goyal => {
            let mut rng = Xoshiro256pp::seed_from_u64(derive_seed(seed, 0x6c6f67));
            // Ground truth: weighted-cascade-proportional with a random
            // per-arc factor. Realistic influence strengths scale inversely
            // with the target's attention (in-degree) — planting uniform
            // probabilities instead makes dense networks trivially
            // supercritical and every sphere the whole graph, unlike the
            // paper's learnt datasets (Table 2).
            use soi_util::rng::Rng;
            let in_deg = topology.in_degrees();
            let truth = ProbGraph::from_fn(topology, |_, v| {
                let factor = 0.3 + 1.7 * rng.random::<f64>();
                (factor / in_deg[v as usize] as f64).clamp(1e-6, 1.0)
            })
            // xtask-allow: panic_policy — clamped to [1e-6, 1] above.
            .expect("valid probabilities");
            let items = ((300.0 * scale) as usize).clamp(100, 3000);
            let log = generate_log(
                &truth,
                &LogGenConfig {
                    num_items: items,
                    seeds_per_item: 2,
                    seed: derive_seed(seed, 0x6974656d),
                },
            );
            let learned = if matches!(source, ProbSource::Saito) {
                learn_saito(truth.graph(), &log, &SaitoConfig::default())
            } else {
                learn_goyal(truth.graph(), &log, Some(1))
            };
            let graph = to_prob_graph(truth.graph(), &learned, 1e-4)
                // xtask-allow: panic_policy — to_prob_graph floors at
                // 1e-4 and both learners emit probabilities in [0, 1].
                .expect("learner outputs valid probabilities");
            Dataset {
                network,
                source,
                graph,
                ground_truth: Some(truth.probs().to_vec()),
            }
        }
    }
}

/// The paper's twelve configurations: the three activity-log networks
/// × {S, G} plus the three SNAP-style networks × {W, F}.
pub fn all_configs() -> Vec<(Network, ProbSource)> {
    Network::all()
        .into_iter()
        .flat_map(|n| n.sources().into_iter().map(move |s| (n, s)))
        .collect()
}

/// The paper's twelve configurations plus the trivalency extension on the
/// three assigned-probability networks (15 total).
pub fn extended_configs() -> Vec<(Network, ProbSource)> {
    let mut configs = all_configs();
    for n in Network::all() {
        if !n.has_activity_log() {
            configs.push((n, ProbSource::Trivalency));
        }
    }
    configs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_configs_matching_the_paper() {
        let configs = all_configs();
        assert_eq!(configs.len(), 12);
        let names: Vec<String> = configs
            .iter()
            .map(|&(n, s)| format!("{}-{}", n.name(), s.suffix()))
            .collect();
        for expect in [
            "digg-syn-S",
            "digg-syn-G",
            "flixster-syn-S",
            "flixster-syn-G",
            "twitter-syn-S",
            "twitter-syn-G",
            "nethept-syn-W",
            "nethept-syn-F",
            "epinions-syn-W",
            "epinions-syn-F",
            "slashdot-syn-W",
            "slashdot-syn-F",
        ] {
            assert!(names.contains(&expect.to_string()), "missing {expect}");
        }
    }

    #[test]
    fn topology_shapes_match_roles() {
        let scale = 0.1;
        // Undirected networks are symmetric.
        for net in [
            Network::FlixsterSyn,
            Network::TwitterSyn,
            Network::NethepSyn,
        ] {
            let g = net.build_graph(scale, 1);
            assert!(!net.directed());
            for (u, v) in g.edges() {
                assert!(g.has_edge(v, u), "{}: asymmetric arc", net.name());
            }
        }
        // NetHEPT-like is much sparser than Twitter-like.
        let hep = Network::NethepSyn.build_graph(scale, 1);
        let tw = Network::TwitterSyn.build_graph(scale, 1);
        let hep_density = hep.num_edges() as f64 / hep.num_nodes() as f64;
        let tw_density = tw.num_edges() as f64 / tw.num_nodes() as f64;
        assert!(
            tw_density > 2.0 * hep_density,
            "twitter {tw_density} vs nethept {hep_density}"
        );
    }

    #[test]
    fn assigned_configs_have_expected_probabilities() {
        let d = build(Network::NethepSyn, ProbSource::Fixed, 0.05, 2);
        assert!(d.graph.probs().iter().all(|&p| p == 0.1));
        assert!(d.ground_truth.is_none());

        let d = build(Network::EpinionsSyn, ProbSource::WeightedCascade, 0.05, 2);
        let in_deg = d.graph.graph().in_degrees();
        for u in d.graph.graph().nodes() {
            for (v, p) in d.graph.out_arcs(u) {
                assert!((p - 1.0 / in_deg[v as usize] as f64).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn learnt_configs_recover_signal() {
        let d = build(Network::DiggSyn, ProbSource::Saito, 0.05, 3);
        assert!(d.ground_truth.is_some());
        assert!(d.graph.num_edges() > 0, "some arcs carry evidence");
        // Learned arcs are a subset of the topology with valid probs.
        assert!(d.graph.probs().iter().all(|&p| p > 0.0 && p <= 1.0));
        let g = build(Network::DiggSyn, ProbSource::Goyal, 0.05, 3);
        assert!(g.graph.num_edges() > 0);
    }

    #[test]
    fn goyal_probabilities_dominate_saito_on_average() {
        // §6.3 observes Goyal-learnt probabilities run larger than
        // Saito-learnt ones (Figure 3), driving bigger cascades. Our
        // synthetic pipeline reproduces that ordering: the frequentist
        // estimator credits any later action, EM discounts shared credit.
        let s = build(Network::TwitterSyn, ProbSource::Saito, 0.05, 4);
        let g = build(Network::TwitterSyn, ProbSource::Goyal, 0.05, 4);
        let mean = |pg: &ProbGraph| pg.probs().iter().sum::<f64>() / pg.num_edges() as f64;
        assert!(
            mean(&g.graph) > mean(&s.graph) * 0.8,
            "goyal {} vs saito {}",
            mean(&g.graph),
            mean(&s.graph)
        );
    }

    #[test]
    fn trivalency_extension_configs() {
        let configs = extended_configs();
        assert_eq!(configs.len(), 15);
        let t_count = configs
            .iter()
            .filter(|&&(_, s)| s == ProbSource::Trivalency)
            .count();
        assert_eq!(t_count, 3);
        let d = build(Network::SlashdotSyn, ProbSource::Trivalency, 0.05, 7);
        assert_eq!(d.name(), "slashdot-syn-T");
        assert!(d
            .graph
            .probs()
            .iter()
            .all(|&p| [0.1, 0.01, 0.001].contains(&p)));
        assert!(!d.source.is_learnt());
    }

    #[test]
    fn determinism_and_scaling() {
        let a = build(Network::SlashdotSyn, ProbSource::Fixed, 0.05, 5);
        let b = build(Network::SlashdotSyn, ProbSource::Fixed, 0.05, 5);
        assert_eq!(a.graph, b.graph);
        let small = Network::SlashdotSyn.build_graph(0.05, 5);
        let big = Network::SlashdotSyn.build_graph(0.2, 5);
        assert!(big.num_nodes() > 2 * small.num_nodes());
    }
}
